#include "image/elf_reader.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "image/byte_reader.hh"
#include "support/checked.hh"
#include "support/error.hh"

namespace accdis
{

namespace
{

// ELF constants we need; defined locally so the reader is self-contained.
constexpr u8 kMag0 = 0x7f;
constexpr u8 kMag1 = 'E';
constexpr u8 kMag2 = 'L';
constexpr u8 kMag3 = 'F';
constexpr u8 kClass32 = 1;
constexpr u8 kClass64 = 2;
constexpr u8 kDataLsb = 1;
constexpr u16 kMachine386 = 3;
constexpr u16 kMachineX8664 = 62;
constexpr u32 kShtProgbits = 1;
constexpr u32 kShtSymtab = 2;
constexpr u32 kShtDynsym = 11;
constexpr u64 kShfAlloc = 0x2;
constexpr u64 kShfExecinstr = 0x4;
constexpr u64 kShfWrite = 0x1;
constexpr u32 kPtLoad = 1;
constexpr u32 kPfX = 1;
constexpr u32 kPfW = 2;

struct ElfHeader
{
    bool is64;
    u16 machine;
    Addr entry;
    u64 phoff;
    u64 shoff;
    u16 phentsize;
    u16 phnum;
    u16 shentsize;
    u16 shnum;
    u16 shstrndx;

    /** Minimum section/program header entry sizes for the class. */
    u16 shentMin() const { return is64 ? 64 : 40; }
    u16 phentMin() const { return is64 ? 56 : 32; }
};

/**
 * Parse the file header into @p hdr; false (with issues) on reject.
 * Both ELF classes are accepted: ELF64/x86-64 and ELF32/i386; the
 * class picks the field layout and the image's decode mode.
 */
bool
parseHeader(const ByteReader &reader, LoadReport &report, ElfHeader &hdr)
{
    if (reader.size() < 52) {
        report.addIssue(LoadErrorCode::Truncated,
                        "file shorter than the ELF header");
        return false;
    }
    if (*reader.u8At(0) != kMag0 || *reader.u8At(1) != kMag1 ||
        *reader.u8At(2) != kMag2 || *reader.u8At(3) != kMag3) {
        report.addIssue(LoadErrorCode::BadMagic, "bad ELF magic");
        return false;
    }
    const u8 elfClass = *reader.u8At(4);
    if (elfClass != kClass64 && elfClass != kClass32) {
        report.addIssue(LoadErrorCode::Unsupported,
                        "unknown ELF class " +
                            std::to_string(elfClass));
        return false;
    }
    hdr.is64 = elfClass == kClass64;
    if (hdr.is64 && reader.size() < 64) {
        report.addIssue(LoadErrorCode::Truncated,
                        "file shorter than the ELF64 header");
        return false;
    }
    if (*reader.u8At(5) != kDataLsb) {
        report.addIssue(LoadErrorCode::Unsupported,
                        "only little-endian images are supported");
        return false;
    }

    hdr.machine = *reader.u16At(18);
    if (hdr.is64) {
        hdr.entry = *reader.u64At(24);
        hdr.phoff = *reader.u64At(32);
        hdr.shoff = *reader.u64At(40);
        hdr.phentsize = *reader.u16At(54);
        hdr.phnum = *reader.u16At(56);
        hdr.shentsize = *reader.u16At(58);
        hdr.shnum = *reader.u16At(60);
        hdr.shstrndx = *reader.u16At(62);
    } else {
        hdr.entry = *reader.u32At(24);
        hdr.phoff = *reader.u32At(28);
        hdr.shoff = *reader.u32At(32);
        hdr.phentsize = *reader.u16At(42);
        hdr.phnum = *reader.u16At(44);
        hdr.shentsize = *reader.u16At(46);
        hdr.shnum = *reader.u16At(48);
        hdr.shstrndx = *reader.u16At(50);
    }
    const u16 wantMachine = hdr.is64 ? kMachineX8664 : kMachine386;
    if (hdr.machine != wantMachine) {
        report.addIssue(LoadErrorCode::Unsupported,
                        hdr.is64
                            ? "only x86-64 images are supported "
                              "for ELF64"
                            : "only i386 images are supported "
                              "for ELF32");
        return false;
    }
    return true;
}

std::string
sectionName(ByteSpan strtab, u32 nameOff)
{
    std::string out;
    for (u64 i = nameOff; i < strtab.size() && strtab[i] != 0; ++i)
        out.push_back(static_cast<char>(strtab[i]));
    return out;
}

/**
 * Classify an out-of-range [off, off + size) table/payload range:
 * arithmetic that wraps is a hostile header, a non-wrapping range
 * past EOF is a truncated file.
 */
LoadErrorCode
rangeErrorCode(u64 off, u64 size)
{
    return checkedAdd(off, size) ? LoadErrorCode::Truncated
                                 : LoadErrorCode::OverflowingHeader;
}

/**
 * Load SHT_PROGBITS+ALLOC sections from the section table. Returns
 * true when at least one section was loaded; false when the image has
 * no (usable) section table and the caller should try program
 * headers. A malformed table entry fails the load in strict mode
 * (loadFailed=true) and is dropped or clamped in salvage mode.
 */
bool
loadFromSections(const ByteReader &reader, const ElfHeader &hdr,
                 const LoadOptions &options, const SectionOwner &owner,
                 BinaryImage &image, LoadReport &report,
                 bool &loadFailed)
{
    if (hdr.shoff == 0 || hdr.shnum == 0)
        return false;
    if (hdr.shentsize < hdr.shentMin()) {
        report.addIssue(LoadErrorCode::Unsupported,
                        "section header entry size " +
                            std::to_string(hdr.shentsize) +
                            " below the class minimum of " +
                            std::to_string(hdr.shentMin()));
        return false;
    }

    u16 shnum = hdr.shnum;
    if (!reader.tableFits(hdr.shoff, shnum, hdr.shentsize)) {
        std::optional<u64> total = tableBytes(shnum, hdr.shentsize);
        LoadErrorCode code =
            total ? rangeErrorCode(hdr.shoff, *total)
                  : LoadErrorCode::OverflowingHeader;
        report.addIssue(code,
                        "section table extends past end of file");
        if (!options.salvage) {
            loadFailed = true;
            return false;
        }
        // Salvage: keep the entries that do fit; fall back to program
        // headers when not even one does.
        u16 fits = 0;
        while (fits < shnum &&
               reader.tableFits(hdr.shoff, fits + u64{1},
                                hdr.shentsize))
            ++fits;
        shnum = fits;
        if (shnum == 0)
            return false;
    }

    // Locate the section-name string table. A malformed string table
    // costs only the names, never the load.
    ByteSpan strtab;
    if (hdr.shstrndx < shnum) {
        u64 sh = hdr.shoff +
                 static_cast<u64>(hdr.shstrndx) * hdr.shentsize;
        u64 off = hdr.is64 ? *reader.u64At(sh + 24)
                           : u64{*reader.u32At(sh + 16)};
        u64 size = hdr.is64 ? *reader.u64At(sh + 32)
                            : u64{*reader.u32At(sh + 20)};
        if (std::optional<ByteSpan> slice = reader.slice(off, size)) {
            strtab = *slice;
        } else {
            report.addIssue(rangeErrorCode(off, size),
                            "section name string table out of range");
        }
    }

    bool loadedAny = false;
    for (u16 i = 0; i < shnum; ++i) {
        u64 sh = hdr.shoff + static_cast<u64>(i) * hdr.shentsize;
        u32 nameOff = *reader.u32At(sh);
        u32 type = *reader.u32At(sh + 4);
        u64 flags = hdr.is64 ? *reader.u64At(sh + 8)
                             : u64{*reader.u32At(sh + 8)};
        Addr addr = hdr.is64 ? *reader.u64At(sh + 16)
                             : Addr{*reader.u32At(sh + 12)};
        u64 off = hdr.is64 ? *reader.u64At(sh + 24)
                           : u64{*reader.u32At(sh + 16)};
        u64 size = hdr.is64 ? *reader.u64At(sh + 32)
                            : u64{*reader.u32At(sh + 20)};

        if (type != kShtProgbits || !(flags & kShfAlloc) || size == 0)
            continue;

        SectionFlags sflags;
        sflags.executable = (flags & kShfExecinstr) != 0;
        sflags.writable = (flags & kShfWrite) != 0;
        std::string name = sectionName(strtab, nameOff);

        ByteSpan payload;
        if (std::optional<ByteSpan> slice = reader.slice(off, size)) {
            payload = *slice;
        } else if (!options.salvage) {
            report.addIssue(rangeErrorCode(off, size),
                            "section " + std::to_string(i) +
                                " payload extends past end of file");
            loadFailed = true;
            return loadedAny;
        } else if (off < reader.size()) {
            // Truncated tail: keep the bytes that are present.
            payload = reader.clampedSlice(off, size);
            report.bytesClamped += size - payload.size();
            report.addIssue(rangeErrorCode(off, size),
                            "section " + std::to_string(i) +
                                " clamped from " + std::to_string(size) +
                                " to " + std::to_string(payload.size()) +
                                " byte(s)");
        } else {
            ++report.sectionsDropped;
            report.addIssue(rangeErrorCode(off, size),
                            "section " + std::to_string(i) +
                                " dropped: offset past end of file");
            continue;
        }
        if (payload.empty())
            continue;
        image.addSection(Section::fromPayload(std::move(name), addr,
                                              payload, sflags, owner));
        ++report.sectionsLoaded;
        loadedAny = true;
    }
    return loadedAny;
}

/** Program-header fallback for fully stripped images; same contract
 *  as loadFromSections. */
bool
loadFromProgramHeaders(const ByteReader &reader, const ElfHeader &hdr,
                       const LoadOptions &options,
                       const SectionOwner &owner, BinaryImage &image,
                       LoadReport &report, bool &loadFailed)
{
    if (hdr.phoff == 0 || hdr.phnum == 0)
        return false;
    if (hdr.phentsize < hdr.phentMin()) {
        report.addIssue(LoadErrorCode::Unsupported,
                        "program header entry size " +
                            std::to_string(hdr.phentsize) +
                            " below the class minimum of " +
                            std::to_string(hdr.phentMin()));
        return false;
    }

    u16 phnum = hdr.phnum;
    if (!reader.tableFits(hdr.phoff, phnum, hdr.phentsize)) {
        std::optional<u64> total = tableBytes(phnum, hdr.phentsize);
        LoadErrorCode code =
            total ? rangeErrorCode(hdr.phoff, *total)
                  : LoadErrorCode::OverflowingHeader;
        report.addIssue(code,
                        "program header table extends past end of file");
        if (!options.salvage) {
            loadFailed = true;
            return false;
        }
        u16 fits = 0;
        while (fits < phnum &&
               reader.tableFits(hdr.phoff, fits + u64{1},
                                hdr.phentsize))
            ++fits;
        phnum = fits;
        if (phnum == 0)
            return false;
    }

    bool loadedAny = false;
    int index = 0;
    for (u16 i = 0; i < phnum; ++i) {
        u64 ph = hdr.phoff + static_cast<u64>(i) * hdr.phentsize;
        u32 type = *reader.u32At(ph);
        // p_flags sits after p_type in ELF64 but after p_memsz in
        // ELF32 — the one field the classes moved.
        u32 flags = hdr.is64 ? *reader.u32At(ph + 4)
                             : *reader.u32At(ph + 24);
        u64 off = hdr.is64 ? *reader.u64At(ph + 8)
                           : u64{*reader.u32At(ph + 4)};
        Addr vaddr = hdr.is64 ? *reader.u64At(ph + 16)
                              : Addr{*reader.u32At(ph + 8)};
        u64 filesz = hdr.is64 ? *reader.u64At(ph + 32)
                              : u64{*reader.u32At(ph + 16)};

        if (type != kPtLoad || filesz == 0)
            continue;

        SectionFlags sflags;
        sflags.executable = (flags & kPfX) != 0;
        sflags.writable = (flags & kPfW) != 0;

        ByteSpan payload;
        if (std::optional<ByteSpan> slice =
                reader.slice(off, filesz)) {
            payload = *slice;
        } else if (!options.salvage) {
            report.addIssue(rangeErrorCode(off, filesz),
                            "segment " + std::to_string(i) +
                                " payload extends past end of file");
            loadFailed = true;
            return loadedAny;
        } else if (off < reader.size()) {
            payload = reader.clampedSlice(off, filesz);
            report.bytesClamped += filesz - payload.size();
            report.addIssue(rangeErrorCode(off, filesz),
                            "segment " + std::to_string(i) +
                                " clamped from " +
                                std::to_string(filesz) + " to " +
                                std::to_string(payload.size()) +
                                " byte(s)");
        } else {
            ++report.sectionsDropped;
            report.addIssue(rangeErrorCode(off, filesz),
                            "segment " + std::to_string(i) +
                                " dropped: offset past end of file");
            continue;
        }
        if (payload.empty())
            continue;
        image.addSection(
            Section::fromPayload("load" + std::to_string(index++),
                                 vaddr, payload, sflags, owner));
        ++report.sectionsLoaded;
        loadedAny = true;
    }
    return loadedAny;
}

} // namespace

bool
isElf(ByteSpan bytes)
{
    return bytes.size() >= 4 && bytes[0] == kMag0 && bytes[1] == kMag1 &&
           bytes[2] == kMag2 && bytes[3] == kMag3;
}

LoadResult
readElfReport(ByteSpan bytes, const std::string &name,
              const LoadOptions &options, const SectionOwner &owner)
{
    LoadResult result;
    result.report.name = name;
    result.report.format = "elf";

    ByteReader reader(bytes);
    ElfHeader hdr;
    if (!parseHeader(reader, result.report, hdr))
        return result;

    BinaryImage image(name);
    image.setMode(hdr.is64 ? x86::DecodeMode::X64
                           : x86::DecodeMode::X86);
    result.report.mode =
        hdr.is64 ? x86::DecodeMode::X64 : x86::DecodeMode::X86;
    bool loadFailed = false;
    bool loaded = loadFromSections(reader, hdr, options, owner, image,
                                   result.report, loadFailed);
    if (!loaded && !loadFailed)
        loaded = loadFromProgramHeaders(reader, hdr, options, owner,
                                        image, result.report,
                                        loadFailed);
    if (loadFailed)
        return result;
    if (!loaded) {
        result.report.addIssue(
            LoadErrorCode::NoSections,
            "no loadable sections or segments found");
        return result;
    }
    if (hdr.entry != 0)
        image.addEntryPoint(hdr.entry);
    result.report.loaded = true;
    result.report.salvaged =
        options.salvage && !result.report.issues.empty();
    result.image = std::move(image);
    return result;
}

BinaryImage
readElf(ByteSpan bytes, const std::string &name)
{
    LoadResult result = readElfReport(bytes, name);
    if (!result.ok()) {
        const std::string &detail = result.report.issues.empty()
                                        ? std::string("load failed")
                                        : result.report.issues
                                              .front()
                                              .detail;
        throw Error("ELF: " + detail);
    }
    return std::move(*result.image);
}

std::vector<ElfSymbol>
readElfFunctionSymbols(ByteSpan bytes)
{
    std::vector<ElfSymbol> out;
    ByteReader reader(bytes);
    LoadReport scratch;
    ElfHeader hdr;
    if (!parseHeader(reader, scratch, hdr))
        return out;
    if (hdr.shoff == 0 || hdr.shnum == 0 ||
        hdr.shentsize < hdr.shentMin() ||
        !reader.tableFits(hdr.shoff, hdr.shnum, hdr.shentsize))
        return out;

    // Symbol entry layouts: ELF64 moved st_value/st_size behind the
    // info/shndx bytes, ELF32 keeps the original ordering.
    const u64 symSize = hdr.is64 ? 24 : 16;
    auto sectionField = [&](u16 index, u64 off64, u64 off32,
                            bool wide) -> u64 {
        u64 sh = hdr.shoff + static_cast<u64>(index) * hdr.shentsize;
        if (hdr.is64)
            return wide ? *reader.u64At(sh + off64)
                        : u64{*reader.u32At(sh + off64)};
        return u64{*reader.u32At(sh + off32)};
    };

    for (u16 i = 0; i < hdr.shnum; ++i) {
        u64 sh = hdr.shoff + static_cast<u64>(i) * hdr.shentsize;
        u32 type = *reader.u32At(sh + 4);
        if (type != kShtSymtab && type != kShtDynsym)
            continue;
        u64 off = sectionField(i, 24, 16, true);
        u64 size = sectionField(i, 32, 20, true);
        u32 link = static_cast<u32>(sectionField(i, 40, 24, false));
        std::optional<ByteSpan> table = reader.slice(off, size);
        if (!table)
            continue;
        // The linked string table costs only the names when absent.
        ByteSpan strtab;
        if (link < hdr.shnum) {
            u64 strOff = sectionField(static_cast<u16>(link), 24, 16,
                                      true);
            u64 strSize = sectionField(static_cast<u16>(link), 32, 20,
                                       true);
            if (auto slice = reader.slice(strOff, strSize))
                strtab = *slice;
        }
        ByteReader syms(*table);
        for (u64 entry = 0; entry + symSize <= table->size();
             entry += symSize) {
            u8 info = hdr.is64 ? *syms.u8At(entry + 4)
                               : *syms.u8At(entry + 12);
            u16 shndx = hdr.is64 ? *syms.u16At(entry + 6)
                                 : *syms.u16At(entry + 14);
            if ((info & 0xf) != 2 || shndx == 0) // STT_FUNC, defined
                continue;
            ElfSymbol sym;
            sym.value = hdr.is64 ? *syms.u64At(entry + 8)
                                 : Addr{*syms.u32At(entry + 4)};
            sym.size = hdr.is64 ? *syms.u64At(entry + 16)
                                : u64{*syms.u32At(entry + 8)};
            sym.name = sectionName(strtab, *syms.u32At(entry));
            out.push_back(std::move(sym));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ElfSymbol &a, const ElfSymbol &b) {
                  return a.value < b.value;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const ElfSymbol &a, const ElfSymbol &b) {
                              return a.value == b.value;
                          }),
              out.end());
    return out;
}

BinaryImage
readElfFile(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)>
        file(std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!file)
        throw Error("ELF: cannot open " + path);
    std::fseek(file.get(), 0, SEEK_END);
    long size = std::ftell(file.get());
    if (size < 0)
        throw Error("ELF: cannot stat " + path);
    std::fseek(file.get(), 0, SEEK_SET);
    ByteVec bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        std::fread(bytes.data(), 1, bytes.size(), file.get()) !=
            bytes.size())
        throw Error("ELF: short read on " + path);
    return readElf(bytes, path);
}

} // namespace accdis
