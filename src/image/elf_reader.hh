/**
 * @file
 * Minimal from-scratch ELF64 reader. Parses just enough of the format
 * (file header, section headers, string table, entry point) to feed the
 * disassembly pipeline with stripped x86-64 binaries; no dependence on
 * libelf or <elf.h>.
 */

#ifndef ACCDIS_IMAGE_ELF_READER_HH
#define ACCDIS_IMAGE_ELF_READER_HH

#include <string>
#include <vector>

#include "image/binary_image.hh"
#include "image/loader.hh"
#include "support/types.hh"

namespace accdis
{

/** True when @p bytes starts with the ELF magic. */
bool isElf(ByteSpan bytes);

/**
 * Parse an ELF64 little-endian image from memory, never throwing on
 * malformed input: the outcome (and every problem found) comes back
 * in the LoadResult's report. All offset/size arithmetic over header
 * fields is overflow-checked, so hostile values near UINT64_MAX are
 * rejected as overflowing-header instead of wrapping into
 * out-of-bounds reads. With options.salvage, malformed section-table
 * entries are dropped and truncated payloads clamped instead of
 * failing the load. A non-null @p owner marks @p bytes as storage it
 * keeps alive; section payloads then alias the file bytes zero-copy
 * instead of being copied.
 */
LoadResult readElfReport(ByteSpan bytes, const std::string &name,
                         const LoadOptions &options = {},
                         const SectionOwner &owner = {});

/**
 * Parse an ELF64 little-endian image from memory.
 * Loads all SHT_PROGBITS sections with the ALLOC flag, marking
 * executability from SHF_EXECINSTR, and records e_entry as an entry
 * point. Falls back to program headers when the section table is
 * missing (fully stripped binaries).
 *
 * @throws Error on malformed or unsupported (non-x86-64/ELF32) input.
 */
BinaryImage readElf(ByteSpan bytes, const std::string &name);

/** Read an ELF file from disk. @throws Error on I/O or parse failure. */
BinaryImage readElfFile(const std::string &path);

/**
 * One function symbol from an ELF symbol table — the ground truth an
 * unstripped twin contributes to the real-binary evaluation.
 */
struct ElfSymbol
{
    std::string name;
    /** Virtual address of the function's first byte. */
    Addr value = 0;
    /** Declared size in bytes (0 when the producer omitted it). */
    u64 size = 0;
};

/**
 * Harvest every defined STT_FUNC symbol from @p bytes' .symtab and
 * .dynsym sections, deduplicated by address and sorted by it. Never
 * throws: malformed or truncated tables simply contribute nothing,
 * so a stripped binary (or garbage) yields an empty vector.
 */
std::vector<ElfSymbol> readElfFunctionSymbols(ByteSpan bytes);

} // namespace accdis

#endif // ACCDIS_IMAGE_ELF_READER_HH
