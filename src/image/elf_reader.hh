/**
 * @file
 * Minimal from-scratch ELF64 reader. Parses just enough of the format
 * (file header, section headers, string table, entry point) to feed the
 * disassembly pipeline with stripped x86-64 binaries; no dependence on
 * libelf or <elf.h>.
 */

#ifndef ACCDIS_IMAGE_ELF_READER_HH
#define ACCDIS_IMAGE_ELF_READER_HH

#include <string>

#include "image/binary_image.hh"
#include "support/types.hh"

namespace accdis
{

/** True when @p bytes starts with the ELF magic. */
bool isElf(ByteSpan bytes);

/**
 * Parse an ELF64 little-endian image from memory.
 * Loads all SHT_PROGBITS sections with the ALLOC flag, marking
 * executability from SHF_EXECINSTR, and records e_entry as an entry
 * point. Falls back to program headers when the section table is
 * missing (fully stripped binaries).
 *
 * @throws Error on malformed or unsupported (non-x86-64/ELF32) input.
 */
BinaryImage readElf(ByteSpan bytes, const std::string &name);

/** Read an ELF file from disk. @throws Error on I/O or parse failure. */
BinaryImage readElfFile(const std::string &path);

} // namespace accdis

#endif // ACCDIS_IMAGE_ELF_READER_HH
