#include "image/pe_reader.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "image/byte_reader.hh"
#include "support/checked.hh"
#include "support/error.hh"

namespace accdis
{

namespace
{

constexpr u16 kDosMagic = 0x5a4d;      // "MZ"
constexpr u32 kPeSignature = 0x00004550; // "PE\0\0"
constexpr u16 kMachineAmd64 = 0x8664;
constexpr u16 kMachineI386 = 0x14c;
constexpr u16 kPe32PlusMagic = 0x20b;
constexpr u16 kPe32Magic = 0x10b;
constexpr u32 kScnMemExecute = 0x20000000;
constexpr u32 kScnMemWrite = 0x80000000;
constexpr u32 kScnCntUninitialized = 0x00000080;

} // namespace

bool
isPe(ByteSpan bytes)
{
    return bytes.size() >= 0x40 && readLe16(bytes, 0) == kDosMagic;
}

LoadResult
readPeReport(ByteSpan bytes, const std::string &name,
             const LoadOptions &options, const SectionOwner &owner)
{
    LoadResult result;
    LoadReport &report = result.report;
    report.name = name;
    report.format = "pe";

    ByteReader reader(bytes);
    std::optional<u16> dosMagic = reader.u16At(0);
    if (!dosMagic || *dosMagic != kDosMagic) {
        report.addIssue(LoadErrorCode::BadMagic, "missing MZ header");
        return result;
    }
    std::optional<u32> peOffField = reader.u32At(0x3c);
    if (!peOffField) {
        report.addIssue(LoadErrorCode::Truncated,
                        "file shorter than the DOS header");
        return result;
    }
    // All further offset math is u64 over u32 header fields, so
    // nothing here can wrap; an out-of-range e_lfanew is caught by
    // the bounds check, not by 32-bit wraparound.
    const u64 peOff = *peOffField;
    if (!reader.canRead(peOff, 24)) {
        report.addIssue(LoadErrorCode::Truncated,
                        "e_lfanew points past end of file");
        return result;
    }
    if (*reader.u32At(peOff) != kPeSignature) {
        report.addIssue(LoadErrorCode::BadMagic, "bad PE signature");
        return result;
    }

    // COFF file header. Two machine/optional-header pairings are in
    // scope: AMD64 + PE32+ (64-bit) and i386 + PE32 (32-bit); the
    // pairing decides the image's decode mode.
    u16 machine = *reader.u16At(peOff + 4);
    u16 numSections = *reader.u16At(peOff + 6);
    u16 optSize = *reader.u16At(peOff + 20);
    if (machine != kMachineAmd64 && machine != kMachineI386) {
        report.addIssue(LoadErrorCode::Unsupported,
                        "only x86-64 (PE32+) and i386 (PE32) images "
                        "are supported");
        return result;
    }
    const bool is64 = machine == kMachineAmd64;
    report.mode = is64 ? x86::DecodeMode::X64 : x86::DecodeMode::X86;
    const u64 optOff = peOff + 24;
    // Minimum optional-header size through NumberOfRvaAndSizes:
    // 112 bytes for PE32+, 96 for PE32 (the 32-bit layout packs
    // BaseOfData where PE32+ widens ImageBase).
    const u16 optMin = is64 ? 112 : 96;
    if (optSize < optMin || !reader.canRead(optOff, optSize)) {
        report.addIssue(LoadErrorCode::Truncated,
                        "optional header truncated");
        return result;
    }
    const u16 optMagic = *reader.u16At(optOff);
    if (optMagic != (is64 ? kPe32PlusMagic : kPe32Magic)) {
        report.addIssue(LoadErrorCode::Unsupported,
                        is64 ? "AMD64 image without a PE32+ optional "
                               "header"
                             : "i386 image without a PE32 optional "
                               "header");
        return result;
    }

    Addr entryRva = *reader.u32At(optOff + 16);
    Addr imageBase = is64 ? *reader.u64At(optOff + 24)
                          : Addr{*reader.u32At(optOff + 28)};

    // Section table follows the optional header.
    const u64 secOff = optOff + optSize;
    u16 sections = numSections;
    if (!reader.tableFits(secOff, sections, 40)) {
        report.addIssue(LoadErrorCode::Truncated,
                        "section table truncated");
        if (!options.salvage)
            return result;
        u16 fits = 0;
        while (fits < sections &&
               reader.tableFits(secOff, fits + u64{1}, 40))
            ++fits;
        sections = fits;
    }

    BinaryImage image(name);
    image.setMode(report.mode);
    for (u16 i = 0; i < sections; ++i) {
        u64 sh = secOff + static_cast<u64>(i) * 40;
        std::string secName;
        for (u64 c = 0; c < 8 && *reader.u8At(sh + c) != 0; ++c)
            secName.push_back(static_cast<char>(*reader.u8At(sh + c)));
        u32 virtualSize = *reader.u32At(sh + 8);
        u32 rva = *reader.u32At(sh + 12);
        u32 rawSize = *reader.u32At(sh + 16);
        u32 rawOff = *reader.u32At(sh + 20);
        u32 characteristics = *reader.u32At(sh + 36);

        if (characteristics & kScnCntUninitialized)
            continue; // .bss-style sections carry no bytes.
        u64 loadSize = std::min<u64>(rawSize, virtualSize ? virtualSize
                                                          : rawSize);
        if (loadSize == 0)
            continue;

        SectionFlags flags;
        flags.executable = (characteristics & kScnMemExecute) != 0;
        flags.writable = (characteristics & kScnMemWrite) != 0;

        ByteSpan payload;
        if (std::optional<ByteSpan> slice =
                reader.slice(rawOff, loadSize)) {
            payload = *slice;
        } else if (!options.salvage) {
            report.addIssue(LoadErrorCode::Truncated,
                            "section " + std::to_string(i) +
                                " payload extends past end of file");
            return result;
        } else if (rawOff < reader.size()) {
            payload = reader.clampedSlice(rawOff, loadSize);
            report.bytesClamped += loadSize - payload.size();
            report.addIssue(LoadErrorCode::Truncated,
                            "section " + std::to_string(i) +
                                " clamped from " +
                                std::to_string(loadSize) + " to " +
                                std::to_string(payload.size()) +
                                " byte(s)");
        } else {
            ++report.sectionsDropped;
            report.addIssue(LoadErrorCode::Truncated,
                            "section " + std::to_string(i) +
                                " dropped: raw data past end of file");
            continue;
        }
        if (payload.empty())
            continue;
        image.addSection(Section::fromPayload(std::move(secName),
                                              imageBase + rva, payload,
                                              flags, owner));
        ++report.sectionsLoaded;
    }
    if (image.sections().empty()) {
        report.addIssue(LoadErrorCode::NoSections,
                        "no loadable sections");
        return result;
    }
    if (entryRva != 0)
        image.addEntryPoint(imageBase + entryRva);
    report.loaded = true;
    report.salvaged = options.salvage && !report.issues.empty();
    result.image = std::move(image);
    return result;
}

BinaryImage
readPe(ByteSpan bytes, const std::string &name)
{
    LoadResult result = readPeReport(bytes, name);
    if (!result.ok()) {
        const std::string &detail =
            result.report.issues.empty()
                ? std::string("load failed")
                : result.report.issues.front().detail;
        throw Error("PE: " + detail);
    }
    return std::move(*result.image);
}

BinaryImage
readPeFile(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)>
        file(std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!file)
        throw Error("PE: cannot open " + path);
    std::fseek(file.get(), 0, SEEK_END);
    long size = std::ftell(file.get());
    if (size < 0)
        throw Error("PE: cannot stat " + path);
    std::fseek(file.get(), 0, SEEK_SET);
    ByteVec bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        std::fread(bytes.data(), 1, bytes.size(), file.get()) !=
            bytes.size())
        throw Error("PE: short read on " + path);
    return readPe(bytes, path);
}

} // namespace accdis
