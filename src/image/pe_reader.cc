#include "image/pe_reader.hh"

#include <cstdio>
#include <memory>

#include "support/bytes.hh"
#include "support/error.hh"

namespace accdis
{

namespace
{

constexpr u16 kDosMagic = 0x5a4d;      // "MZ"
constexpr u32 kPeSignature = 0x00004550; // "PE\0\0"
constexpr u16 kMachineAmd64 = 0x8664;
constexpr u16 kPe32PlusMagic = 0x20b;
constexpr u32 kScnMemExecute = 0x20000000;
constexpr u32 kScnMemWrite = 0x80000000;
constexpr u32 kScnCntUninitialized = 0x00000080;

} // namespace

bool
isPe(ByteSpan bytes)
{
    return bytes.size() >= 0x40 && readLe16(bytes, 0) == kDosMagic;
}

BinaryImage
readPe(ByteSpan bytes, const std::string &name)
{
    if (!isPe(bytes))
        throw Error("PE: missing MZ header");
    u32 peOff = readLe32(bytes, 0x3c);
    if (peOff + 24 > bytes.size())
        throw Error("PE: e_lfanew points past end of file");
    if (readLe32(bytes, peOff) != kPeSignature)
        throw Error("PE: bad PE signature");

    // COFF file header.
    u16 machine = readLe16(bytes, peOff + 4);
    u16 numSections = readLe16(bytes, peOff + 6);
    u16 optSize = readLe16(bytes, peOff + 20);
    if (machine != kMachineAmd64)
        throw Error("PE: only x86-64 (PE32+) images are supported");
    u64 optOff = peOff + 24;
    if (optOff + optSize > bytes.size() || optSize < 112)
        throw Error("PE: optional header truncated");
    if (readLe16(bytes, optOff) != kPe32PlusMagic)
        throw Error("PE: not a PE32+ optional header");

    Addr entryRva = readLe32(bytes, optOff + 16);
    Addr imageBase = readLe64(bytes, optOff + 24);

    // Section table follows the optional header.
    u64 secOff = optOff + optSize;
    if (secOff + static_cast<u64>(numSections) * 40 > bytes.size())
        throw Error("PE: section table truncated");

    BinaryImage image(name);
    for (u16 i = 0; i < numSections; ++i) {
        u64 sh = secOff + static_cast<u64>(i) * 40;
        std::string secName;
        for (int c = 0; c < 8 && bytes[sh + c] != 0; ++c)
            secName.push_back(static_cast<char>(bytes[sh + c]));
        u32 virtualSize = readLe32(bytes, sh + 8);
        u32 rva = readLe32(bytes, sh + 12);
        u32 rawSize = readLe32(bytes, sh + 16);
        u32 rawOff = readLe32(bytes, sh + 20);
        u32 characteristics = readLe32(bytes, sh + 36);

        if (characteristics & kScnCntUninitialized)
            continue; // .bss-style sections carry no bytes.
        u64 loadSize = std::min<u64>(rawSize, virtualSize ? virtualSize
                                                          : rawSize);
        if (loadSize == 0)
            continue;
        if (static_cast<u64>(rawOff) + loadSize > bytes.size())
            throw Error("PE: section payload extends past end of file");

        SectionFlags flags;
        flags.executable = (characteristics & kScnMemExecute) != 0;
        flags.writable = (characteristics & kScnMemWrite) != 0;
        ByteVec payload(bytes.begin() + rawOff,
                        bytes.begin() + rawOff + loadSize);
        image.addSection(Section(secName, imageBase + rva,
                                 std::move(payload), flags));
    }
    if (image.sections().empty())
        throw Error("PE: no loadable sections");
    if (entryRva != 0)
        image.addEntryPoint(imageBase + entryRva);
    return image;
}

BinaryImage
readPeFile(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)>
        file(std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!file)
        throw Error("PE: cannot open " + path);
    std::fseek(file.get(), 0, SEEK_END);
    long size = std::ftell(file.get());
    if (size < 0)
        throw Error("PE: cannot stat " + path);
    std::fseek(file.get(), 0, SEEK_SET);
    ByteVec bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        std::fread(bytes.data(), 1, bytes.size(), file.get()) !=
            bytes.size())
        throw Error("PE: short read on " + path);
    return readPe(bytes, path);
}

} // namespace accdis
