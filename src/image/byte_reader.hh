/**
 * @file
 * Bounds-checked, overflow-proof view over an untrusted byte stream.
 *
 * The ELF and PE readers share this core: every read states its
 * offset and width, the reader verifies the range with subtraction-
 * form checks (support/checked.hh) and returns nullopt instead of
 * touching out-of-range memory. Unlike the raw readLeNN() helpers in
 * support/bytes.hh — whose asserts compile out in release builds —
 * a ByteReader is safe to point at arbitrary attacker-controlled
 * bytes.
 */

#ifndef ACCDIS_IMAGE_BYTE_READER_HH
#define ACCDIS_IMAGE_BYTE_READER_HH

#include <optional>

#include "support/bytes.hh"
#include "support/checked.hh"
#include "support/types.hh"

namespace accdis
{

/** Overflow-safe random-access reader over a ByteSpan. */
class ByteReader
{
  public:
    explicit ByteReader(ByteSpan bytes) : bytes_(bytes) {}

    /** Total bytes available. */
    u64 size() const { return bytes_.size(); }

    /** True when [off, off + count) lies inside the stream. */
    bool
    canRead(u64 off, u64 count) const
    {
        return fitsRange(off, count, bytes_.size());
    }

    /**
     * True when an @p count-entry table of @p entsize-byte records
     * starting at @p off lies fully inside the stream; false both on
     * ranges past the end and on count*entsize products that wrap.
     */
    bool
    tableFits(u64 off, u64 count, u64 entsize) const
    {
        std::optional<u64> total = tableBytes(count, entsize);
        return total && canRead(off, *total);
    }

    /** Byte at @p off, or nullopt when out of range. */
    std::optional<u8>
    u8At(u64 off) const
    {
        if (!canRead(off, 1))
            return std::nullopt;
        return bytes_[off];
    }

    /** Little-endian u16 at @p off, or nullopt when out of range. */
    std::optional<u16>
    u16At(u64 off) const
    {
        if (!canRead(off, 2))
            return std::nullopt;
        return readLe16(bytes_, off);
    }

    /** Little-endian u32 at @p off, or nullopt when out of range. */
    std::optional<u32>
    u32At(u64 off) const
    {
        if (!canRead(off, 4))
            return std::nullopt;
        return readLe32(bytes_, off);
    }

    /** Little-endian u64 at @p off, or nullopt when out of range. */
    std::optional<u64>
    u64At(u64 off) const
    {
        if (!canRead(off, 8))
            return std::nullopt;
        return readLe64(bytes_, off);
    }

    /** Subspan [off, off + count), or nullopt when out of range. */
    std::optional<ByteSpan>
    slice(u64 off, u64 count) const
    {
        if (!canRead(off, count))
            return std::nullopt;
        return bytes_.subspan(off, count);
    }

    /**
     * The in-range prefix of [off, off + count): the full slice when
     * it fits, the [off, end) tail when only the start is in range,
     * and an empty span when even @p off is out of range. The salvage
     * path uses this to clamp truncated section payloads.
     */
    ByteSpan
    clampedSlice(u64 off, u64 count) const
    {
        if (off >= bytes_.size())
            return {};
        u64 avail = bytes_.size() - off;
        return bytes_.subspan(off, count < avail ? count : avail);
    }

  private:
    ByteSpan bytes_;
};

} // namespace accdis

#endif // ACCDIS_IMAGE_BYTE_READER_HH
