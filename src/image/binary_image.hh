/**
 * @file
 * Container for a loaded binary: sections plus entry points.
 */

#ifndef ACCDIS_IMAGE_BINARY_IMAGE_HH
#define ACCDIS_IMAGE_BINARY_IMAGE_HH

#include <string>
#include <vector>

#include "image/section.hh"
#include "support/types.hh"
#include "x86/mode.hh"

namespace accdis
{

/**
 * A loaded binary image: an ordered list of sections and the known
 * entry points (program entry, exported/visible function starts when
 * available). This is the unit the disassembly pipeline consumes.
 */
class BinaryImage
{
  public:
    /** Create an empty image named @p name. */
    explicit BinaryImage(std::string name = "image")
        : name_(std::move(name))
    {}

    /** Image name (file path or synthetic id). */
    const std::string &name() const { return name_; }

    /**
     * Decode mode the image's code sections must be interpreted
     * under, derived from the container headers at load time (ELF
     * class / PE machine) or from the synth generator's config.
     * Batch and server route each image to a matching engine.
     */
    x86::DecodeMode mode() const { return mode_; }

    /** Record the image's decode mode (loader / generator only). */
    void setMode(x86::DecodeMode mode) { mode_ = mode; }

    /** Append a section; returns its index. */
    std::size_t
    addSection(Section section)
    {
        sections_.push_back(std::move(section));
        return sections_.size() - 1;
    }

    /** All sections. */
    const std::vector<Section> &sections() const { return sections_; }

    /** Section by index. */
    const Section &section(std::size_t idx) const { return sections_[idx]; }

    /** Section containing @p addr, or nullptr. */
    const Section *
    sectionContaining(Addr addr) const
    {
        for (const auto &sec : sections_) {
            if (sec.containsVaddr(addr))
                return &sec;
        }
        return nullptr;
    }

    /** Section with the given name, or nullptr. */
    const Section *
    sectionNamed(const std::string &name) const
    {
        for (const auto &sec : sections_) {
            if (sec.name() == name)
                return &sec;
        }
        return nullptr;
    }

    /** Register a known entry point (virtual address). */
    void addEntryPoint(Addr addr) { entryPoints_.push_back(addr); }

    /** Known entry points. */
    const std::vector<Addr> &entryPoints() const { return entryPoints_; }

    /** Sum of executable section sizes. */
    u64
    executableBytes() const
    {
        u64 total = 0;
        for (const auto &sec : sections_) {
            if (sec.flags().executable)
                total += sec.size();
        }
        return total;
    }

  private:
    std::string name_;
    x86::DecodeMode mode_ = x86::DecodeMode::X64;
    std::vector<Section> sections_;
    std::vector<Addr> entryPoints_;
};

} // namespace accdis

#endif // ACCDIS_IMAGE_BINARY_IMAGE_HH
