/**
 * @file
 * A named, addressed slice of a binary image.
 */

#ifndef ACCDIS_IMAGE_SECTION_HH
#define ACCDIS_IMAGE_SECTION_HH

#include <memory>
#include <string>

#include "support/serialize.hh"
#include "support/types.hh"

namespace accdis
{

/**
 * Keep-alive handle for section payloads that alias caller-owned
 * storage (an mmap'd file, a shared read buffer) instead of owning a
 * copy. The pointee is never dereferenced — only its lifetime
 * matters — so any aliasing shared_ptr works.
 */
using SectionOwner = std::shared_ptr<const void>;

/** Access permissions of a section, as relevant to disassembly. */
struct SectionFlags
{
    bool executable = false;
    bool writable = false;
    bool initialized = true;
};

/**
 * One section of a binary image: a byte payload with a virtual base
 * address. Offsets used throughout the analyses are section-relative;
 * vaddr() converts them to image virtual addresses.
 */
class Section
{
  public:
    Section(std::string name, Addr base, ByteVec bytes, SectionFlags flags)
        : name_(std::move(name)), base_(base), bytes_(std::move(bytes)),
          flags_(flags)
    {}

    /**
     * Aliasing mode: the payload is @p view into storage kept alive by
     * @p owner (an mmap'd file or shared buffer) — no copy is made.
     * @pre owner != nullptr and @p view points into storage it keeps
     * alive.
     */
    Section(std::string name, Addr base, ByteSpan view,
            SectionOwner owner, SectionFlags flags)
        : name_(std::move(name)), base_(base), view_(view),
          owner_(std::move(owner)), flags_(flags)
    {}

    /**
     * Build a section over @p payload: aliasing (zero-copy) when
     * @p owner is non-null, owning a copy otherwise. The readers use
     * this so one construction site serves both the mmap and the
     * from-memory paths.
     */
    static Section
    fromPayload(std::string name, Addr base, ByteSpan payload,
                SectionFlags flags, const SectionOwner &owner)
    {
        if (owner)
            return Section(std::move(name), base, payload, owner,
                           flags);
        return Section(std::move(name), base,
                       ByteVec(payload.begin(), payload.end()), flags);
    }

    /** Section name, e.g. ".text". */
    const std::string &name() const { return name_; }

    /** Virtual address of the first byte. */
    Addr base() const { return base_; }

    /** Section payload. */
    ByteSpan
    bytes() const
    {
        return owner_ ? view_ : ByteSpan(bytes_);
    }

    /** Number of payload bytes. */
    u64 size() const { return bytes().size(); }

    /** Permission flags. */
    const SectionFlags &flags() const { return flags_; }

    /** Virtual address of section-relative @p off. */
    Addr vaddr(Offset off) const { return base_ + off; }

    /** True when virtual address @p addr falls inside this section. */
    bool
    containsVaddr(Addr addr) const
    {
        return addr >= base_ && addr - base_ < size();
    }

    /** Section-relative offset of @p addr. @pre containsVaddr(addr). */
    Offset toOffset(Addr addr) const { return addr - base_; }

    /**
     * Content identity of the section for result caching: a stable
     * 64-bit hash of the payload bytes, the virtual base address and
     * the permission flags. Two sections with equal contentKey()s
     * produce byte-identical analyses under equal engine
     * configurations (the name is deliberately excluded — renaming
     * .text does not change what the bytes mean). Computed on demand
     * and not cached so const Sections stay shareable across threads
     * without synchronization.
     */
    u64
    contentKey() const
    {
        Hasher hasher;
        hasher.add(bytes());
        hasher.add(base_);
        hasher.add(static_cast<u8>(flags_.executable));
        hasher.add(static_cast<u8>(flags_.writable));
        hasher.add(static_cast<u8>(flags_.initialized));
        return hasher.digest();
    }

  private:
    std::string name_;
    Addr base_;
    /** Owned payload storage (owner_ == nullptr). */
    ByteVec bytes_;
    /** Aliased payload view (owner_ != nullptr); points into the
     *  storage owner_ keeps alive, so copies and moves stay valid. */
    ByteSpan view_;
    SectionOwner owner_;
    SectionFlags flags_;
};

} // namespace accdis

#endif // ACCDIS_IMAGE_SECTION_HH
