/**
 * @file
 * A named, addressed slice of a binary image.
 */

#ifndef ACCDIS_IMAGE_SECTION_HH
#define ACCDIS_IMAGE_SECTION_HH

#include <string>

#include "support/serialize.hh"
#include "support/types.hh"

namespace accdis
{

/** Access permissions of a section, as relevant to disassembly. */
struct SectionFlags
{
    bool executable = false;
    bool writable = false;
    bool initialized = true;
};

/**
 * One section of a binary image: a byte payload with a virtual base
 * address. Offsets used throughout the analyses are section-relative;
 * vaddr() converts them to image virtual addresses.
 */
class Section
{
  public:
    Section(std::string name, Addr base, ByteVec bytes, SectionFlags flags)
        : name_(std::move(name)), base_(base), bytes_(std::move(bytes)),
          flags_(flags)
    {}

    /** Section name, e.g. ".text". */
    const std::string &name() const { return name_; }

    /** Virtual address of the first byte. */
    Addr base() const { return base_; }

    /** Section payload. */
    ByteSpan bytes() const { return bytes_; }

    /** Number of payload bytes. */
    u64 size() const { return bytes_.size(); }

    /** Permission flags. */
    const SectionFlags &flags() const { return flags_; }

    /** Virtual address of section-relative @p off. */
    Addr vaddr(Offset off) const { return base_ + off; }

    /** True when virtual address @p addr falls inside this section. */
    bool
    containsVaddr(Addr addr) const
    {
        return addr >= base_ && addr - base_ < size();
    }

    /** Section-relative offset of @p addr. @pre containsVaddr(addr). */
    Offset toOffset(Addr addr) const { return addr - base_; }

    /**
     * Content identity of the section for result caching: a stable
     * 64-bit hash of the payload bytes, the virtual base address and
     * the permission flags. Two sections with equal contentKey()s
     * produce byte-identical analyses under equal engine
     * configurations (the name is deliberately excluded — renaming
     * .text does not change what the bytes mean). Computed on demand
     * and not cached so const Sections stay shareable across threads
     * without synchronization.
     */
    u64
    contentKey() const
    {
        Hasher hasher;
        hasher.add(ByteSpan(bytes_));
        hasher.add(base_);
        hasher.add(static_cast<u8>(flags_.executable));
        hasher.add(static_cast<u8>(flags_.writable));
        hasher.add(static_cast<u8>(flags_.initialized));
        return hasher.digest();
    }

  private:
    std::string name_;
    Addr base_;
    ByteVec bytes_;
    SectionFlags flags_;
};

} // namespace accdis

#endif // ACCDIS_IMAGE_SECTION_HH
