/**
 * @file
 * Minimal ELF and PE writers: serialize a BinaryImage (e.g. a
 * synthesized corpus binary) into a real on-disk object that external
 * tools (objdump, IDA, Ghidra) can open. The image's decode mode
 * picks the container class — ELF64/PE32+ for x86-64 images,
 * ELF32/PE32 for x86-32. Round-trips through the in-repo readers.
 */

#ifndef ACCDIS_IMAGE_WRITERS_HH
#define ACCDIS_IMAGE_WRITERS_HH

#include <string>
#include <vector>

#include "image/binary_image.hh"
#include "image/elf_reader.hh"
#include "support/types.hh"

namespace accdis
{

/** Serialize @p image as a minimal ELF executable image (ELF64 for
 *  x86-64 images, ELF32 for x86-32 — by BinaryImage::mode()). */
ByteVec writeElf(const BinaryImage &image);

/**
 * writeElf with a .symtab/.strtab pair carrying @p symbols as global
 * STT_FUNC entries — the "unstripped twin" of the plain writeElf
 * output. Symbols whose value falls outside every section are
 * dropped (st_shndx must name a real section). Round-trips through
 * readElfFunctionSymbols.
 */
ByteVec writeElf(const BinaryImage &image,
                 const std::vector<ElfSymbol> &symbols);

/** Serialize @p image as a minimal PE image (PE32+ for x86-64
 *  images, PE32 for x86-32 — by BinaryImage::mode()). */
ByteVec writePe(const BinaryImage &image);

/** Write @p bytes to @p path. @throws Error on I/O failure. */
void writeFileBytes(const std::string &path, ByteSpan bytes);

} // namespace accdis

#endif // ACCDIS_IMAGE_WRITERS_HH
