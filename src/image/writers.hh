/**
 * @file
 * Minimal ELF64 and PE32+ writers: serialize a BinaryImage (e.g. a
 * synthesized corpus binary) into a real on-disk object that external
 * tools (objdump, IDA, Ghidra) can open. Round-trips through the
 * in-repo readers.
 */

#ifndef ACCDIS_IMAGE_WRITERS_HH
#define ACCDIS_IMAGE_WRITERS_HH

#include <string>

#include "image/binary_image.hh"
#include "support/types.hh"

namespace accdis
{

/** Serialize @p image as a minimal ELF64 x86-64 executable image. */
ByteVec writeElf(const BinaryImage &image);

/** Serialize @p image as a minimal PE32+ x86-64 image. */
ByteVec writePe(const BinaryImage &image);

/** Write @p bytes to @p path. @throws Error on I/O failure. */
void writeFileBytes(const std::string &path, ByteSpan bytes);

} // namespace accdis

#endif // ACCDIS_IMAGE_WRITERS_HH
