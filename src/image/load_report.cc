#include "image/load_report.hh"

namespace accdis
{

const char *
loadErrorCodeName(LoadErrorCode code)
{
    switch (code) {
    case LoadErrorCode::Io:
        return "io";
    case LoadErrorCode::Truncated:
        return "truncated";
    case LoadErrorCode::BadMagic:
        return "bad-magic";
    case LoadErrorCode::Unsupported:
        return "unsupported";
    case LoadErrorCode::OverflowingHeader:
        return "overflowing-header";
    case LoadErrorCode::NoSections:
        return "no-sections";
    case LoadErrorCode::Salvaged:
        return "salvaged";
    }
    return "unknown";
}

bool
loadErrorCodeFromName(const std::string &name, LoadErrorCode &out)
{
    static constexpr LoadErrorCode kCodes[] = {
        LoadErrorCode::Io,           LoadErrorCode::Truncated,
        LoadErrorCode::BadMagic,     LoadErrorCode::Unsupported,
        LoadErrorCode::OverflowingHeader, LoadErrorCode::NoSections,
        LoadErrorCode::Salvaged,
    };
    for (LoadErrorCode code : kCodes) {
        if (name == loadErrorCodeName(code)) {
            out = code;
            return true;
        }
    }
    return false;
}

LoadErrorCode
LoadReport::primaryCode() const
{
    if (loaded)
        return LoadErrorCode::Salvaged;
    if (!issues.empty())
        return issues.front().code;
    return LoadErrorCode::NoSections;
}

std::string
LoadReport::summary() const
{
    std::string out = format;
    out += ": ";
    if (loaded && !salvaged) {
        out += "ok, " + std::to_string(sectionsLoaded) + " section(s)";
        return out;
    }
    out += loadErrorCodeName(primaryCode());
    if (loaded) {
        out += " (" + std::to_string(sectionsLoaded) + " loaded, " +
               std::to_string(sectionsDropped) + " dropped, " +
               std::to_string(bytesClamped) + " byte(s) clamped)";
    }
    if (!issues.empty()) {
        out += ": ";
        out += issues.front().detail;
        if (issues.size() > 1) {
            out += " (+" + std::to_string(issues.size() - 1) +
                   " more issue(s))";
        }
    }
    return out;
}

} // namespace accdis
