/**
 * @file
 * Fixed-size work-stealing thread pool for the batch-analysis
 * pipeline.
 *
 * Each worker owns a deque: tasks submitted from a worker thread go
 * to the *front* of its own deque (LIFO, cache-warm), tasks submitted
 * from outside are distributed round-robin to deque *backs*, and an
 * idle worker steals from the *back* of a victim's deque (FIFO, the
 * oldest — and usually largest — piece of work). Results travel
 * through std::future, so exceptions thrown inside a task propagate
 * to whoever calls get(). Destruction is a clean shutdown: every
 * task already submitted runs to completion before the workers join.
 */

#ifndef ACCDIS_PIPELINE_THREAD_POOL_HH
#define ACCDIS_PIPELINE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/types.hh"

namespace accdis::pipeline
{

/** Lifetime statistics of a ThreadPool, for the metrics registry. */
struct PoolStats
{
    u64 submitted = 0;     ///< Tasks accepted by submit().
    u64 executed = 0;      ///< Tasks run to completion.
    u64 steals = 0;        ///< Tasks obtained from another worker.
    u64 maxQueueDepth = 0; ///< High-water mark of pending tasks.
};

/**
 * Fixed-size work-stealing thread pool.
 *
 * Thread safety: submit(), runPendingTask() and stats() may be called
 * from any thread, including from inside pool tasks (nested submits).
 * Blocking on a future from *inside* a pool task can deadlock a fully
 * loaded pool; use waitAndHelp() there instead, which runs pending
 * tasks while waiting.
 */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads; 0 selects
     * std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Clean shutdown: runs every pending task, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Schedule @p fn and return a future for its result. The task's
     * exception (if any) is rethrown from future::get().
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn &>>
    {
        using Result = std::invoke_result_t<Fn &>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        pushTask([task] { (*task)(); });
        return future;
    }

    /**
     * Run one pending task on the calling thread, if any is queued.
     * Returns false when every deque was empty. Lets blocked callers
     * help instead of idling (see waitAndHelp()).
     */
    bool runPendingTask();

    /**
     * Graceful drain, distinct from shutdown: immediately reject any
     * further submit() (with accdis::Error), then block until every
     * task already accepted — queued or mid-execution — has finished.
     * The workers stay alive afterwards, so stats() and the futures
     * of drained tasks remain usable; destruction is still the only
     * thing that joins them. Must be called from outside the pool
     * (a task draining its own pool would wait on itself). Idempotent
     * and safe to call from several threads — all of them block until
     * the pool is empty.
     */
    void drain();

    /** True once drain() has been entered; submit() now rejects. */
    bool draining() const { return draining_.load(); }

    /** Snapshot of lifetime statistics. */
    PoolStats stats() const;

  private:
    using Task = std::function<void()>;

    /** One worker's deque; the mutex arbitrates owner vs thieves. */
    struct WorkerQueue
    {
        mutable std::mutex mutex;
        std::deque<Task> tasks;
    };

    void pushTask(Task task);
    bool popTask(unsigned self, Task &out);
    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    /** Bumped around task execution so drain() can wait for tasks
     *  that already left a deque but have not finished running. */
    void noteTaskDone();

    std::mutex sleepMutex_;
    std::condition_variable wake_;
    std::condition_variable drained_;
    bool stopping_ = false;
    std::atomic<bool> draining_{false};

    std::atomic<u64> active_{0};
    std::atomic<u64> pending_{0};
    std::atomic<u64> submitted_{0};
    std::atomic<u64> executed_{0};
    std::atomic<u64> steals_{0};
    std::atomic<u64> maxQueueDepth_{0};
    std::atomic<u64> nextQueue_{0};
};

/**
 * Wait for @p future while running other pool tasks on this thread;
 * safe to call from inside a pool task (no deadlock). Returns or
 * rethrows the task's result.
 */
template <typename T>
T
waitAndHelp(ThreadPool &pool, std::future<T> future)
{
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
        if (!pool.runPendingTask())
            std::this_thread::yield();
    }
    return future.get();
}

} // namespace accdis::pipeline

#endif // ACCDIS_PIPELINE_THREAD_POOL_HH
