/**
 * @file
 * Lightweight metrics for the batch pipeline: named atomic counters
 * and monotonic timers, dumpable as JSON.
 *
 * The registry is write-hot and read-cold: counter/timer handles are
 * resolved once (under a mutex) and then updated lock-free from any
 * number of threads, so instrumentation is cheap enough to leave on.
 *
 * JSON schema (stable, consumed by tooling):
 * @code{.json}
 * {
 *   "counters": { "<name>": <u64>, ... },
 *   "timers": {
 *     "<name>": { "nanos": <u64>, "count": <u64>,
 *                 "seconds": <double> }, ...
 *   }
 * }
 * @endcode
 * Names are emitted in sorted order, so dumps are deterministic.
 */

#ifndef ACCDIS_PIPELINE_METRICS_HH
#define ACCDIS_PIPELINE_METRICS_HH

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/types.hh"

namespace accdis::pipeline
{

/** Monotonically increasing atomic counter. */
class Counter
{
  public:
    /** Add @p delta. Thread-safe, lock-free. */
    void add(u64 delta) { value_.fetch_add(delta); }

    /** Add one. */
    void inc() { add(1); }

    /** Replace the value (for gauges computed once per run). */
    void set(u64 value) { value_.store(value); }

    /** Current value. */
    u64 value() const { return value_.load(); }

  private:
    std::atomic<u64> value_{0};
};

/** Accumulated wall time plus number of recordings. */
class Timer
{
  public:
    /** Record one interval of @p nanos wall time. */
    void
    add(u64 nanos)
    {
        nanos_.fetch_add(nanos);
        count_.fetch_add(1);
    }

    /** Merge @p count pre-aggregated intervals totaling @p nanos. */
    void
    merge(u64 nanos, u64 count)
    {
        nanos_.fetch_add(nanos);
        count_.fetch_add(count);
    }

    u64 nanos() const { return nanos_.load(); }
    u64 count() const { return count_.load(); }
    double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

  private:
    std::atomic<u64> nanos_{0};
    std::atomic<u64> count_{0};
};

/**
 * One consistent point-in-time copy of a registry: every atomic is
 * read exactly once when the snapshot is taken, and all rendering
 * (JSON, live stats replies) works from the frozen copy — a stats
 * poll racing ongoing updates can never observe one counter at time
 * t1 and another at time t2 > t1 within the same dump.
 */
struct MetricsSnapshot
{
    struct TimerValue
    {
        u64 nanos = 0;
        u64 count = 0;

        double
        seconds() const
        {
            return static_cast<double>(nanos) * 1e-9;
        }
    };

    std::map<std::string, u64> counters;
    std::map<std::string, TimerValue> timers;

    /** Render as JSON (see file comment for the stable schema). */
    std::string toJson() const;
};

/**
 * Named registry of counters and timers. Handle resolution locks;
 * handle use is lock-free. Returned references stay valid for the
 * registry's lifetime.
 */
class MetricsRegistry
{
  public:
    /** The counter named @p name, created on first use. */
    Counter &counter(const std::string &name);

    /** The timer named @p name, created on first use. */
    Timer &timer(const std::string &name);

    /**
     * Read every metric once into a frozen copy, safe to render while
     * other threads keep updating the registry. For each timer the
     * count is read before the nanos so a concurrent Timer::add can
     * never yield a snapshot whose nanos/count ratio is missing time
     * that its count already claims.
     */
    MetricsSnapshot snapshot() const;

    /** snapshot().toJson() — one consistent read, then render. */
    std::string toJson() const;

    /** Write toJson() to @p path. Throws accdis::Error on I/O error. */
    void writeJson(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/** RAII: records the elapsed wall time into a Timer on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer)
        : timer_(timer), start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer()
    {
        auto elapsed = std::chrono::steady_clock::now() - start_;
        timer_.add(static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                elapsed)
                .count()));
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer &timer_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace accdis::pipeline

#endif // ACCDIS_PIPELINE_METRICS_HH
