#include "pipeline/thread_pool.hh"

#include "support/error.hh"

namespace accdis::pipeline
{

namespace
{

/** Identity of the current thread inside a pool, for nested submits. */
thread_local const ThreadPool *tlsPool = nullptr;
thread_local unsigned tlsWorker = 0;

} // namespace

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::pushTask(Task task)
{
    if (draining_.load())
        throw Error("pool: draining, new tasks are rejected");
    unsigned target;
    bool front = false;
    if (tlsPool == this) {
        // Nested submit from a worker: push LIFO onto its own deque
        // so freshly spawned subtasks run while their data is hot.
        target = tlsWorker;
        front = true;
    } else {
        target = static_cast<unsigned>(nextQueue_.fetch_add(1) %
                                       queues_.size());
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        if (front)
            queues_[target]->tasks.push_front(std::move(task));
        else
            queues_[target]->tasks.push_back(std::move(task));
    }
    submitted_.fetch_add(1);
    u64 depth = pending_.fetch_add(1) + 1;
    u64 seen = maxQueueDepth_.load();
    while (depth > seen &&
           !maxQueueDepth_.compare_exchange_weak(seen, depth)) {
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wake_.notify_one();
}

bool
ThreadPool::popTask(unsigned self, Task &out)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    // Own deque first, from the front (LIFO end).
    if (self < n) {
        WorkerQueue &own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            // Active before pending: a drainer must never observe
            // both zero while this task is still in flight.
            active_.fetch_add(1);
            pending_.fetch_sub(1);
            return true;
        }
    }
    // Steal from a victim's back (FIFO end): the oldest task there is
    // typically the coarsest unit of work still waiting.
    for (unsigned i = 1; i <= n; ++i) {
        unsigned victim = (self + i) % n;
        if (victim == self)
            continue;
        WorkerQueue &queue = *queues_[victim];
        std::lock_guard<std::mutex> lock(queue.mutex);
        if (!queue.tasks.empty()) {
            out = std::move(queue.tasks.back());
            queue.tasks.pop_back();
            active_.fetch_add(1);
            pending_.fetch_sub(1);
            steals_.fetch_add(1);
            return true;
        }
    }
    return false;
}

bool
ThreadPool::runPendingTask()
{
    unsigned self = tlsPool == this
                        ? tlsWorker
                        : static_cast<unsigned>(queues_.size());
    Task task;
    if (!popTask(self, task))
        return false;
    // Count before running: a joiner that saw the task's future
    // become ready must also see it counted in stats().
    executed_.fetch_add(1);
    task();
    noteTaskDone();
    return true;
}

void
ThreadPool::noteTaskDone()
{
    if (active_.fetch_sub(1) == 1 && draining_.load() &&
        pending_.load() == 0) {
        // Pair the notify with the drainer's mutex so the wakeup
        // cannot slip between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(sleepMutex_);
        drained_.notify_all();
    }
}

void
ThreadPool::drain()
{
    draining_.store(true);
    std::unique_lock<std::mutex> lock(sleepMutex_);
    drained_.wait(lock, [this] {
        return pending_.load() == 0 && active_.load() == 0;
    });
}

void
ThreadPool::workerLoop(unsigned self)
{
    tlsPool = this;
    tlsWorker = self;
    Task task;
    for (;;) {
        if (popTask(self, task)) {
            executed_.fetch_add(1);
            task();
            task = nullptr;
            noteTaskDone();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (stopping_ && pending_.load() == 0)
            return;
        wake_.wait(lock, [this] {
            return stopping_ || pending_.load() > 0;
        });
        if (stopping_ && pending_.load() == 0)
            return;
    }
}

PoolStats
ThreadPool::stats() const
{
    PoolStats stats;
    stats.submitted = submitted_.load();
    stats.executed = executed_.load();
    stats.steals = steals_.load();
    stats.maxQueueDepth = maxQueueDepth_.load();
    return stats;
}

} // namespace accdis::pipeline
