#include "pipeline/metrics.hh"

#include <cstdio>
#include <sstream>

#include "support/error.hh"

namespace accdis::pipeline
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace(name, counter->value());
    for (const auto &[name, timer] : timers_) {
        MetricsSnapshot::TimerValue value;
        // Count before nanos: see the snapshot() contract.
        value.count = timer->count();
        value.nanos = timer->nanos();
        snap.timers.emplace(name, value);
    }
    return snap;
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto &[name, timer] : timers) {
        char seconds[32];
        std::snprintf(seconds, sizeof(seconds), "%.9f",
                      timer.seconds());
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": {\"nanos\": " << timer.nanos
            << ", \"count\": " << timer.count
            << ", \"seconds\": " << seconds << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

std::string
MetricsRegistry::toJson() const
{
    return snapshot().toJson();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::string json = toJson();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        throw Error("metrics: cannot open " + path);
    std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    int closed = std::fclose(file);
    if (written != json.size() || closed != 0)
        throw Error("metrics: short write on " + path);
}

} // namespace accdis::pipeline
