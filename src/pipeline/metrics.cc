#include "pipeline/metrics.hh"

#include <cstdio>
#include <sstream>

#include "support/error.hh"

namespace accdis::pipeline
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": " << counter->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto &[name, timer] : timers_) {
        char seconds[32];
        std::snprintf(seconds, sizeof(seconds), "%.9f",
                      timer->seconds());
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": {\"nanos\": " << timer->nanos()
            << ", \"count\": " << timer->count()
            << ", \"seconds\": " << seconds << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::string json = toJson();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        throw Error("metrics: cannot open " + path);
    std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    int closed = std::fclose(file);
    if (written != json.size() || closed != 0)
        throw Error("metrics: short write on " + path);
}

} // namespace accdis::pipeline
