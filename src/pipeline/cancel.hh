/**
 * @file
 * Cooperative cancellation for asynchronously submitted analyses.
 *
 * A CancelToken is shared between whoever submits work (a server
 * connection, a batch driver) and the task executing it. The task
 * polls state() at its natural checkpoints — the pipeline checks
 * between executable sections — and abandons the remaining work when
 * the submitter cancelled or the request's deadline passed. Tokens
 * never interrupt a section mid-analysis: cancellation is a promise
 * to stop at the next checkpoint, not preemption.
 */

#ifndef ACCDIS_PIPELINE_CANCEL_HH
#define ACCDIS_PIPELINE_CANCEL_HH

#include <atomic>
#include <chrono>

namespace accdis::pipeline
{

/** Why a token reports itself cancelled. */
enum class CancelState
{
    /** Keep going. */
    Live,
    /** cancel() was called (client disconnect, operator abort). */
    Cancelled,
    /** The deadline set at submission has passed. */
    DeadlineExceeded,
};

/** Stable lowercase name of @p state ("cancelled", "deadline"). */
inline const char *
cancelStateName(CancelState state)
{
    switch (state) {
    case CancelState::Cancelled:
        return "cancelled";
    case CancelState::DeadlineExceeded:
        return "deadline";
    default:
        return "live";
    }
}

/**
 * Shared cancellation flag plus an optional absolute deadline.
 * Thread-safe: cancel() and state() may race freely. The deadline is
 * set once, before the token is shared with the executing task.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;

    /** Token that expires at @p deadline. */
    explicit CancelToken(Clock::time_point deadline)
        : deadline_(deadline), hasDeadline_(true)
    {}

    /** Token that expires @p budget from now. */
    static CancelToken
    withTimeout(Clock::duration budget)
    {
        return CancelToken(Clock::now() + budget);
    }

    /** Request cancellation; sticky and idempotent. */
    void cancel() { cancelled_.store(true); }

    /** Current verdict; DeadlineExceeded is evaluated lazily. */
    CancelState
    state() const
    {
        if (cancelled_.load())
            return CancelState::Cancelled;
        if (hasDeadline_ && Clock::now() >= deadline_)
            return CancelState::DeadlineExceeded;
        return CancelState::Live;
    }

    /** True when the work should stop at its next checkpoint. */
    bool stopped() const { return state() != CancelState::Live; }

    /** The deadline, meaningful only when hasDeadline(). */
    Clock::time_point deadline() const { return deadline_; }
    bool hasDeadline() const { return hasDeadline_; }

  private:
    std::atomic<bool> cancelled_{false};
    Clock::time_point deadline_{};
    bool hasDeadline_ = false;
};

} // namespace accdis::pipeline

#endif // ACCDIS_PIPELINE_CANCEL_HH
