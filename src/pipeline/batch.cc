#include "pipeline/batch.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "cache/analysis_cache.hh"
#include "prob/ngram.hh"
#include "support/error.hh"

namespace accdis::pipeline
{

namespace
{

/** Inputs of one per-binary fan-out, precomputed on the main thread
 *  so every task sees stable, read-only data. */
struct BinaryPlan
{
    const BinaryImage *image = nullptr;
    std::vector<AuxRegion> auxRegions;
    /** Index into BinaryImage::sections() per executable section. */
    std::vector<std::size_t> execSections;
    /** Entry offsets per executable section (same order). */
    std::vector<std::vector<Offset>> entries;
};

BinaryPlan
planBinary(const BinaryImage &image)
{
    BinaryPlan plan;
    plan.image = &image;
    plan.auxRegions = auxRegionsOf(image);
    const auto &sections = image.sections();
    for (std::size_t idx = 0; idx < sections.size(); ++idx) {
        const Section &section = sections[idx];
        if (!section.flags().executable)
            continue;
        std::vector<Offset> entries;
        for (Addr entry : image.entryPoints()) {
            if (section.containsVaddr(entry))
                entries.push_back(section.toOffset(entry));
        }
        plan.execSections.push_back(idx);
        plan.entries.push_back(std::move(entries));
    }
    return plan;
}

/** Analyze one executable section of a planned binary. */
DisassemblyEngine::SectionResult
analyzePlanned(const DisassemblyEngine &engine, const BinaryPlan &plan,
               std::size_t which, CacheRuntime *cache)
{
    return analyzeSectionCached(
        engine, plan.image->section(plan.execSections[which]),
        plan.entries[which], plan.auxRegions, cache);
}

} // namespace

DisassemblyEngine::SectionResult
analyzeSectionCached(const DisassemblyEngine &engine,
                     const Section &section,
                     const std::vector<Offset> &entryOffsets,
                     const std::vector<AuxRegion> &auxRegions,
                     CacheRuntime *cache)
{
    DisassemblyEngine::SectionResult result;
    result.name = section.name();
    result.base = section.base();
    if (cache == nullptr) {
        result.result = engine.analyzeSection(section.bytes(),
                                              entryOffsets,
                                              section.base(),
                                              auxRegions);
        return result;
    }

    const CacheKey key =
        makeCacheKey(section.contentKey(), entryOffsets,
                     section.base(), auxRegions, engine);
    if (auto cached = loadCachedResult(cache->store, key)) {
        if (!cache->verify) {
            result.result = std::move(cached->result);
            return result;
        }
        // Paranoia path: the hit only counts if a cold run agrees
        // byte for byte (map, starts, provenance AND stats).
        Classification cold = engine.analyzeSection(
            section.bytes(), entryOffsets, section.base(),
            auxRegions);
        ++cache->verified;
        if (!(cold == cached->result)) {
            ++cache->verifyMismatches;
            throw Error("cache: verification mismatch for section " +
                        result.name);
        }
        result.result = std::move(cold);
        return result;
    }

    // Result miss. A cached superset for these bytes (keyed on
    // content + schema only) still warm-starts the analysis even when
    // a config change invalidated the result entry.
    std::optional<Superset> warm =
        loadCachedSuperset(cache->store, key, section.bytes(),
                           engine.config().mode);
    std::optional<Superset> decoded;
    ExplainArtifact explain;
    DisassemblyEngine::AnalyzeOptions options;
    if (warm)
        options.warmSuperset = &*warm;
    else
        options.supersetOut = &decoded;
    if (cache->explain)
        options.explainOut = &explain;
    result.result = engine.analyzeSectionWith(
        section.bytes(), entryOffsets, section.base(), auxRegions,
        options);
    storeCachedResult(cache->store, key, result.result);
    if (cache->explain)
        storeCachedExplain(cache->store, key, explain);
    if (decoded)
        storeCachedSuperset(cache->store, key, *decoded);
    return result;
}

BinaryResult
analyzeBinary(const DisassemblyEngine &engine, const LoadResult &load,
              CacheRuntime *cache, const CancelToken *cancel,
              const SectionAnalyzeFn &analyze)
{
    BinaryResult result;
    result.load = load.report;
    if (!load.ok()) {
        result.name = load.report.name;
        result.error = load.report.summary();
        result.errorKind = "load";
        return result;
    }

    const BinaryImage &image = *load.image;
    result.name = image.name();
    const BinaryPlan plan = planBinary(image);
    try {
        for (std::size_t s = 0; s < plan.execSections.size(); ++s) {
            if (cancel != nullptr && cancel->stopped()) {
                CancelState state = cancel->state();
                result.sections.clear();
                result.error =
                    std::string("analysis abandoned: ") +
                    cancelStateName(state);
                result.errorKind = cancelStateName(state);
                return result;
            }
            const Section &section =
                image.section(plan.execSections[s]);
            result.sections.push_back(
                analyze ? analyze(section, plan.entries[s],
                                  plan.auxRegions)
                        : analyzeSectionCached(engine, section,
                                               plan.entries[s],
                                               plan.auxRegions,
                                               cache));
        }
        result.executableBytes = image.executableBytes();
    } catch (const std::exception &err) {
        result.sections.clear();
        // An exception with the token already stopped is the
        // cancellation surfacing mid-section (e.g. a single-flight
        // follower abandoning its wait): report the cancel taxonomy,
        // not a generic analysis failure.
        if (cancel != nullptr && cancel->stopped()) {
            CancelState state = cancel->state();
            result.error = std::string("analysis abandoned: ") +
                           cancelStateName(state);
            result.errorKind = cancelStateName(state);
        } else {
            result.error = err.what();
            result.errorKind = "analysis";
        }
    } catch (...) {
        result.sections.clear();
        result.error = "non-standard exception (no message)";
        result.errorKind = "analysis";
    }
    return result;
}

BatchAnalyzer::BatchAnalyzer(BatchConfig config,
                             MetricsRegistry *metrics)
    : config_(std::move(config)), metrics_(metrics)
{}

BatchReport
BatchAnalyzer::run(const std::vector<const BinaryImage *> &images) const
{
    // Each binary analyzes under its container-derived decode mode,
    // so a batch may mix x86-64 and x86-32 images freely: build one
    // engine per mode actually present. The configured engine mode
    // only matters when no image overrides it (empty batch).
    EngineConfig engineConfig = config_.engine;
    PassTimes passTimes;
    engineConfig.passTimes = &passTimes;

    bool modeSeen[2] = {false, false};
    for (const BinaryImage *image : images)
        modeSeen[static_cast<std::size_t>(image->mode())] = true;
    modeSeen[static_cast<std::size_t>(engineConfig.mode)] = true;
    std::unique_ptr<const DisassemblyEngine> engines[2];
    for (std::size_t m = 0; m < 2; ++m) {
        if (!modeSeen[m])
            continue;
        EngineConfig modeConfig = engineConfig;
        modeConfig.mode = static_cast<x86::DecodeMode>(m);
        // Pre-warm the per-mode model so its one-time training is
        // not serialized inside (or timed as part of) the parallel
        // region.
        if (modeConfig.useProbModel && !modeConfig.model)
            defaultProbModel(modeConfig.mode);
        engines[m] =
            std::make_unique<const DisassemblyEngine>(modeConfig);
    }
    auto engineFor = [&engines](const BinaryImage &image)
        -> const DisassemblyEngine & {
        return *engines[static_cast<std::size_t>(image.mode())];
    };

    std::unique_ptr<CacheRuntime> cacheRt;
    if (!config_.cacheDir.empty()) {
        cacheRt = std::make_unique<CacheRuntime>(
            ResultCache::Config{config_.cacheDir,
                                config_.cacheMaxBytes});
        cacheRt->verify = config_.cacheVerify;
        cacheRt->explain = config_.cacheExplain;
    }
    CacheRuntime *cache = cacheRt.get();

    BatchReport report;
    report.results.resize(images.size());

    auto start = std::chrono::steady_clock::now();
    {
        // Plan on the main thread. Declared before the pool on
        // purpose: tasks reference plans by address, and a worker can
        // still be unwinding a task body after its future became
        // ready — the pool's destructor (which joins every worker)
        // must run before the plans are freed.
        std::vector<BinaryPlan> plans;
        plans.reserve(images.size());
        for (const BinaryImage *image : images)
            plans.push_back(planBinary(*image));

        ThreadPool pool(config_.jobs);
        report.jobs = pool.workerCount();

        // Fan out, one future per (binary, section) — or per binary
        // when splitSections is off. Futures are collected in input
        // order, which pins the output order regardless of the order
        // tasks actually ran in.
        using SectionFuture =
            std::future<DisassemblyEngine::SectionResult>;
        std::vector<std::vector<SectionFuture>> futures(images.size());
        for (std::size_t i = 0; i < plans.size(); ++i) {
            const BinaryPlan &plan = plans[i];
            const DisassemblyEngine *engine =
                &engineFor(*plan.image);
            if (config_.splitSections) {
                for (std::size_t s = 0; s < plan.execSections.size();
                     ++s) {
                    futures[i].push_back(pool.submit([engine, &plan,
                                                      s, cache] {
                        return analyzePlanned(*engine, plan, s,
                                              cache);
                    }));
                }
            } else if (!plan.execSections.empty()) {
                // One task analyzing every section of the binary;
                // still one future per section for uniform joining.
                auto promise = std::make_shared<std::vector<
                    std::promise<DisassemblyEngine::SectionResult>>>(
                    plan.execSections.size());
                for (auto &p : *promise)
                    futures[i].push_back(p.get_future());
                pool.submit([engine, &plan, promise, cache] {
                    // Cache the count: after the final set_value the
                    // joiner may race ahead, so the loop must not
                    // read plan again.
                    const std::size_t count =
                        plan.execSections.size();
                    for (std::size_t s = 0; s < count; ++s) {
                        try {
                            promise->at(s).set_value(
                                analyzePlanned(*engine, plan, s,
                                               cache));
                        } catch (...) {
                            promise->at(s).set_exception(
                                std::current_exception());
                        }
                    }
                });
            }
        }

        for (std::size_t i = 0; i < images.size(); ++i) {
            BinaryResult &result = report.results[i];
            result.name = images[i]->name();
            // Capture EVERYTHING, per item: an exception from one
            // binary's analysis (Error or not) must become that
            // item's error record, never abort the batch or leak a
            // `catch (...)` black hole that discards the message.
            try {
                for (auto &future : futures[i])
                    result.sections.push_back(future.get());
                result.executableBytes = images[i]->executableBytes();
                report.totalBytes += result.executableBytes;
            } catch (const std::exception &err) {
                result.sections.clear();
                result.error = err.what();
                result.errorKind = "analysis";
                ++report.analysisFailures;
            } catch (...) {
                result.sections.clear();
                result.error = "non-standard exception (no message)";
                result.errorKind = "analysis";
                ++report.analysisFailures;
            }
        }
        report.pool = pool.stats();
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    report.wallSeconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            elapsed)
            .count();
    report.passTimes = passTimes.snapshot();

    if (cache != nullptr) {
        const CacheStats &stats = cache->store.stats();
        report.cache.enabled = true;
        report.cache.hits = stats.hits.load();
        report.cache.misses = stats.misses.load();
        report.cache.stores = stats.stores.load();
        report.cache.evictions = stats.evictions.load();
        report.cache.badEntries = stats.badEntries.load();
        report.cache.verified = cache->verified.load();
        report.cache.verifyMismatches =
            cache->verifyMismatches.load();
    }

    if (metrics_) {
        metrics_->counter("batch.binaries").add(images.size());
        u64 sections = 0, failed = 0, supersetBytes = 0;
        for (const BinaryResult &result : report.results) {
            sections += result.sections.size();
            failed += !result.ok();
            for (const auto &section : result.sections)
                supersetBytes += section.result.stats.supersetBytes;
        }
        metrics_->counter("batch.sections").add(sections);
        metrics_->counter("batch.failed_binaries").add(failed);
        metrics_->counter("fault.analysis")
            .add(report.analysisFailures);
        metrics_->counter("batch.bytes").add(report.totalBytes);
        metrics_->counter("batch.bytes_per_sec")
            .set(static_cast<u64>(report.bytesPerSecond()));
        metrics_->counter("batch.jobs").set(report.jobs);
        metrics_->timer("batch.wall").add(static_cast<u64>(
            report.wallSeconds * 1e9));
        metrics_->counter("pool.tasks").add(report.pool.executed);
        metrics_->counter("pool.steals").add(report.pool.steals);
        metrics_->counter("pool.max_queue_depth")
            .set(report.pool.maxQueueDepth);
        metrics_->counter("superset.bytes").add(supersetBytes);
        if (report.cache.enabled) {
            metrics_->counter("cache.hits").add(report.cache.hits);
            metrics_->counter("cache.misses")
                .add(report.cache.misses);
            metrics_->counter("cache.stores")
                .add(report.cache.stores);
            metrics_->counter("cache.evictions")
                .add(report.cache.evictions);
            metrics_->counter("cache.bad_entry")
                .add(report.cache.badEntries);
            metrics_->counter("cache.verified")
                .add(report.cache.verified);
            metrics_->counter("cache.verify_mismatches")
                .add(report.cache.verifyMismatches);
            metrics_->counter("cache.hit_rate_pct")
                .set(static_cast<u64>(report.cache.hitRate() * 100.0));
        }
        for (const PassTimes::Entry &entry : report.passTimes)
            metrics_->timer("pass." + entry.name)
                .merge(entry.nanos, entry.calls);
    }
    return report;
}

BatchReport
BatchAnalyzer::run(const std::vector<BinaryImage> &images) const
{
    std::vector<const BinaryImage *> pointers;
    pointers.reserve(images.size());
    for (const BinaryImage &image : images)
        pointers.push_back(&image);
    return run(pointers);
}

BatchReport
BatchAnalyzer::run(const std::vector<LoadResult> &loads) const
{
    // Analyze the items that loaded; the rest become per-item load
    // error records spliced back at their input positions.
    std::vector<const BinaryImage *> images;
    std::vector<std::size_t> position;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (loads[i].ok()) {
            images.push_back(&*loads[i].image);
            position.push_back(i);
        }
    }

    BatchReport report = run(images);
    std::vector<BinaryResult> expanded(loads.size());
    for (std::size_t j = 0; j < position.size(); ++j)
        expanded[position[j]] = std::move(report.results[j]);
    report.results = std::move(expanded);

    for (std::size_t i = 0; i < loads.size(); ++i) {
        BinaryResult &result = report.results[i];
        result.load = loads[i].report;
        if (!loads[i].ok()) {
            result.name = loads[i].report.name;
            result.error = loads[i].report.summary();
            result.errorKind = "load";
            ++report.loadFailures;
        } else if (loads[i].report.salvaged) {
            ++report.salvagedLoads;
        }
    }

    if (metrics_) {
        u64 sectionsDropped = 0, bytesClamped = 0;
        for (const LoadResult &load : loads) {
            sectionsDropped += load.report.sectionsDropped;
            bytesClamped += load.report.bytesClamped;
            if (!load.ok()) {
                metrics_
                    ->counter(std::string("load.error.") +
                              loadErrorCodeName(
                                  load.report.primaryCode()))
                    .inc();
            }
        }
        metrics_->counter("load.attempted").add(loads.size());
        metrics_->counter("load.loaded")
            .add(loads.size() - report.loadFailures);
        metrics_->counter("load.salvaged").add(report.salvagedLoads);
        metrics_->counter("load.failed").add(report.loadFailures);
        metrics_->counter("load.sections_dropped")
            .add(sectionsDropped);
        metrics_->counter("load.bytes_clamped").add(bytesClamped);
        metrics_->counter("fault.load").add(report.loadFailures);
        metrics_->counter("fault.total")
            .add(report.loadFailures + report.analysisFailures);
    }
    return report;
}

BatchReport
BatchAnalyzer::runFiles(const std::vector<std::string> &paths) const
{
    std::vector<LoadResult> loads;
    loads.reserve(paths.size());
    auto start = std::chrono::steady_clock::now();
    for (const std::string &path : paths)
        loads.push_back(loadBinaryFile(path, config_.load));
    if (metrics_) {
        auto elapsed = std::chrono::steady_clock::now() - start;
        metrics_->timer("load.wall").add(static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                elapsed)
                .count()));
    }
    return run(loads);
}

} // namespace accdis::pipeline
