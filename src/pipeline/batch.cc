#include "pipeline/batch.hh"

#include <chrono>
#include <utility>

#include "prob/ngram.hh"
#include "support/error.hh"

namespace accdis::pipeline
{

namespace
{

/** Inputs of one per-binary fan-out, precomputed on the main thread
 *  so every task sees stable, read-only data. */
struct BinaryPlan
{
    const BinaryImage *image = nullptr;
    std::vector<AuxRegion> auxRegions;
    /** Index into BinaryImage::sections() per executable section. */
    std::vector<std::size_t> execSections;
    /** Entry offsets per executable section (same order). */
    std::vector<std::vector<Offset>> entries;
};

BinaryPlan
planBinary(const BinaryImage &image)
{
    BinaryPlan plan;
    plan.image = &image;
    plan.auxRegions = auxRegionsOf(image);
    const auto &sections = image.sections();
    for (std::size_t idx = 0; idx < sections.size(); ++idx) {
        const Section &section = sections[idx];
        if (!section.flags().executable)
            continue;
        std::vector<Offset> entries;
        for (Addr entry : image.entryPoints()) {
            if (section.containsVaddr(entry))
                entries.push_back(section.toOffset(entry));
        }
        plan.execSections.push_back(idx);
        plan.entries.push_back(std::move(entries));
    }
    return plan;
}

/** Analyze one executable section of a planned binary. */
DisassemblyEngine::SectionResult
analyzePlanned(const DisassemblyEngine &engine, const BinaryPlan &plan,
               std::size_t which)
{
    const Section &section =
        plan.image->section(plan.execSections[which]);
    DisassemblyEngine::SectionResult result;
    result.name = section.name();
    result.base = section.base();
    result.result = engine.analyzeSection(section.bytes(),
                                          plan.entries[which],
                                          section.base(),
                                          plan.auxRegions);
    return result;
}

} // namespace

BatchAnalyzer::BatchAnalyzer(BatchConfig config,
                             MetricsRegistry *metrics)
    : config_(std::move(config)), metrics_(metrics)
{}

BatchReport
BatchAnalyzer::run(const std::vector<const BinaryImage *> &images) const
{
    // Pre-warm the shared model so its one-time training is not
    // serialized inside (or timed as part of) the parallel region.
    EngineConfig engineConfig = config_.engine;
    if (engineConfig.useProbModel && !engineConfig.model)
        defaultProbModel();

    PassTimes passTimes;
    engineConfig.passTimes = &passTimes;
    const DisassemblyEngine engine(engineConfig);

    BatchReport report;
    report.results.resize(images.size());

    auto start = std::chrono::steady_clock::now();
    {
        // Plan on the main thread. Declared before the pool on
        // purpose: tasks reference plans by address, and a worker can
        // still be unwinding a task body after its future became
        // ready — the pool's destructor (which joins every worker)
        // must run before the plans are freed.
        std::vector<BinaryPlan> plans;
        plans.reserve(images.size());
        for (const BinaryImage *image : images)
            plans.push_back(planBinary(*image));

        ThreadPool pool(config_.jobs);
        report.jobs = pool.workerCount();

        // Fan out, one future per (binary, section) — or per binary
        // when splitSections is off. Futures are collected in input
        // order, which pins the output order regardless of the order
        // tasks actually ran in.
        using SectionFuture =
            std::future<DisassemblyEngine::SectionResult>;
        std::vector<std::vector<SectionFuture>> futures(images.size());
        for (std::size_t i = 0; i < plans.size(); ++i) {
            const BinaryPlan &plan = plans[i];
            if (config_.splitSections) {
                for (std::size_t s = 0; s < plan.execSections.size();
                     ++s) {
                    futures[i].push_back(pool.submit([&engine, &plan,
                                                      s] {
                        return analyzePlanned(engine, plan, s);
                    }));
                }
            } else if (!plan.execSections.empty()) {
                // One task analyzing every section of the binary;
                // still one future per section for uniform joining.
                auto promise = std::make_shared<std::vector<
                    std::promise<DisassemblyEngine::SectionResult>>>(
                    plan.execSections.size());
                for (auto &p : *promise)
                    futures[i].push_back(p.get_future());
                pool.submit([&engine, &plan, promise] {
                    // Cache the count: after the final set_value the
                    // joiner may race ahead, so the loop must not
                    // read plan again.
                    const std::size_t count =
                        plan.execSections.size();
                    for (std::size_t s = 0; s < count; ++s) {
                        try {
                            promise->at(s).set_value(
                                analyzePlanned(engine, plan, s));
                        } catch (...) {
                            promise->at(s).set_exception(
                                std::current_exception());
                        }
                    }
                });
            }
        }

        for (std::size_t i = 0; i < images.size(); ++i) {
            BinaryResult &result = report.results[i];
            result.name = images[i]->name();
            try {
                for (auto &future : futures[i])
                    result.sections.push_back(future.get());
                result.executableBytes = images[i]->executableBytes();
                report.totalBytes += result.executableBytes;
            } catch (const Error &err) {
                result.sections.clear();
                result.error = err.what();
            }
        }
        report.pool = pool.stats();
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    report.wallSeconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            elapsed)
            .count();
    report.passTimes = passTimes.snapshot();

    if (metrics_) {
        metrics_->counter("batch.binaries").add(images.size());
        u64 sections = 0, failed = 0, supersetBytes = 0;
        for (const BinaryResult &result : report.results) {
            sections += result.sections.size();
            failed += !result.ok();
            for (const auto &section : result.sections)
                supersetBytes += section.result.stats.supersetBytes;
        }
        metrics_->counter("batch.sections").add(sections);
        metrics_->counter("batch.failed_binaries").add(failed);
        metrics_->counter("batch.bytes").add(report.totalBytes);
        metrics_->counter("batch.bytes_per_sec")
            .set(static_cast<u64>(report.bytesPerSecond()));
        metrics_->counter("batch.jobs").set(report.jobs);
        metrics_->timer("batch.wall").add(static_cast<u64>(
            report.wallSeconds * 1e9));
        metrics_->counter("pool.tasks").add(report.pool.executed);
        metrics_->counter("pool.steals").add(report.pool.steals);
        metrics_->counter("pool.max_queue_depth")
            .set(report.pool.maxQueueDepth);
        metrics_->counter("superset.bytes").add(supersetBytes);
        for (const PassTimes::Entry &entry : report.passTimes)
            metrics_->timer("pass." + entry.name)
                .merge(entry.nanos, entry.calls);
    }
    return report;
}

BatchReport
BatchAnalyzer::run(const std::vector<BinaryImage> &images) const
{
    std::vector<const BinaryImage *> pointers;
    pointers.reserve(images.size());
    for (const BinaryImage &image : images)
        pointers.push_back(&image);
    return run(pointers);
}

} // namespace accdis::pipeline
