/**
 * @file
 * Batch analysis: fan whole binaries — and, within a binary, its
 * independent executable sections — across a work-stealing thread
 * pool, with per-pass metrics and a hard determinism guarantee.
 *
 * Determinism: DisassemblyEngine::analyzeSection() is a pure function
 * of its inputs (const engine, no shared mutable state), every task
 * analyzes a disjoint section, and results are assembled in input
 * order from the futures — so BatchAnalyzer output is byte-identical
 * to a serial analyzeAll() loop at any job count.
 */

#ifndef ACCDIS_PIPELINE_BATCH_HH
#define ACCDIS_PIPELINE_BATCH_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "cache/result_cache.hh"
#include "core/engine.hh"
#include "image/binary_image.hh"
#include "image/loader.hh"
#include "pipeline/cancel.hh"
#include "pipeline/metrics.hh"
#include "pipeline/thread_pool.hh"

namespace accdis::pipeline
{

/** Configuration of one batch run. */
struct BatchConfig
{
    /** Worker threads; 0 selects hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Fan out executable sections of one binary as separate tasks
     * (finer grain, better load balance on few large binaries). When
     * false each binary is a single task.
     */
    bool splitSections = true;
    /** Engine configuration applied to every binary. */
    EngineConfig engine;

    /**
     * Result-cache directory; empty disables caching. Unchanged
     * sections (same bytes, entries, aux regions, engine config and
     * pass registry) are served from disk and skip analysis entirely;
     * changed sections warm-start from a cached superset when one
     * matches their content.
     */
    std::string cacheDir;
    /** LRU size cap of the cache directory, in bytes. */
    u64 cacheMaxBytes = 256ull << 20;
    /**
     * Paranoia mode: on every cache hit ALSO run the cold analysis
     * and fail the binary unless the cached result is byte-identical
     * (operator==, including provenance and Stats). Costs a full cold
     * run per hit; for CI and cache debugging.
     */
    bool cacheVerify = false;
    /**
     * Record provenance on cold runs and bundle the explain artifact
     * into each stored result entry so `--explain` can later answer
     * from the cache without re-analysis.
     */
    bool cacheExplain = false;

    /**
     * Loader behavior for runFiles(): salvage mode recovers the
     * well-formed sections of partially corrupt images instead of
     * failing them (see LoadOptions).
     */
    LoadOptions load;
};

/** Analysis outcome of one binary within a batch. */
struct BinaryResult
{
    /** Image name, copied from BinaryImage::name(). */
    std::string name;
    /** Per-executable-section results, in image section order. */
    std::vector<DisassemblyEngine::SectionResult> sections;
    /** Executable bytes analyzed. */
    u64 executableBytes = 0;
    /** Empty on success; the exception message when this item
     *  failed. One bad item never fails the batch: every failure is
     *  captured here, per item, with the batch completing. */
    std::string error;
    /** Which stage failed: "" (success), "load" or "analysis". */
    std::string errorKind;
    /** Loader diagnostics (populated by the LoadResult/runFiles
     *  entry points; default for pre-loaded images). */
    LoadReport load;

    bool ok() const { return error.empty(); }
};

/** Whole-batch outcome plus throughput bookkeeping. */
struct BatchReport
{
    /** One entry per input image, in input order. */
    std::vector<BinaryResult> results;
    /** Worker threads actually used. */
    unsigned jobs = 1;
    /** Wall time of the fan-out + join, in seconds. */
    double wallSeconds = 0.0;
    /** Executable bytes across all successfully analyzed binaries. */
    u64 totalBytes = 0;
    /** Pool statistics of the run (steals, queue depth, tasks). */
    PoolStats pool;
    /** Items whose load failed (LoadResult/runFiles entry points). */
    u64 loadFailures = 0;
    /** Items loaded only through salvage-mode repairs. */
    u64 salvagedLoads = 0;
    /** Items whose analysis threw (captured per item). */
    u64 analysisFailures = 0;
    /** Per-pass engine times accumulated across the whole batch,
     *  keyed by pass name, covering every registered pass that ran. */
    PassTimes::Snapshot passTimes;

    /** Result-cache activity of the run (all zero when disabled). */
    struct CacheSummary
    {
        bool enabled = false;
        u64 hits = 0;
        u64 misses = 0;
        u64 stores = 0;
        u64 evictions = 0;
        u64 badEntries = 0;
        /** Hits re-run cold under cacheVerify. */
        u64 verified = 0;
        /** Verified hits that were NOT byte-identical (each also
         *  fails its binary with an error). */
        u64 verifyMismatches = 0;

        double
        hitRate() const
        {
            u64 total = hits + misses;
            return total > 0
                       ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
        }
    };
    CacheSummary cache;

    /** Throughput in bytes per second (0 when wallSeconds is 0). */
    double
    bytesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(totalBytes) / wallSeconds
                   : 0.0;
    }
};

/**
 * Shared cache state of one analysis scope: the on-disk store plus
 * the verify/explain switches and verification counters. BatchAnalyzer
 * creates one per run(); long-lived services (src/server) keep one
 * alive across requests so warm hits accumulate. All members are safe
 * to share across analysis threads.
 */
struct CacheRuntime
{
    ResultCache store;
    bool verify = false;
    bool explain = false;
    std::atomic<u64> verified{0};
    std::atomic<u64> verifyMismatches{0};

    explicit CacheRuntime(ResultCache::Config config)
        : store(std::move(config))
    {}
};

/**
 * The cache-aware analysis of one executable section — the single
 * step every analysis path runs, whether fanned out by BatchAnalyzer
 * or wrapped in the server's single-flight table: result-cache
 * lookup (with optional cold-run verification), warm superset start
 * on a result miss, cold analysis, store-back. @p cache may be null:
 * always cold, nothing stored. Thread-safe for concurrent calls on
 * one engine/cache pair.
 */
DisassemblyEngine::SectionResult
analyzeSectionCached(const DisassemblyEngine &engine,
                     const Section &section,
                     const std::vector<Offset> &entryOffsets,
                     const std::vector<AuxRegion> &auxRegions,
                     CacheRuntime *cache);

/**
 * Per-section analysis hook for analyzeBinary(). Receives the section
 * and its planned inputs (entry offsets, aux regions); returns the
 * finished SectionResult. The default runs analyzeSectionCached();
 * the server interposes its single-flight table here.
 */
using SectionAnalyzeFn = std::function<DisassemblyEngine::SectionResult(
    const Section &section, const std::vector<Offset> &entryOffsets,
    const std::vector<AuxRegion> &auxRegions)>;

/**
 * Cancellation-aware, fault-isolated analysis of one loaded binary —
 * the building block for asynchronous submission: schedule
 * `pool.submit([=] { return analyzeBinary(...); })` and every
 * outcome (load failure, analysis exception, cancellation, deadline
 * expiry) comes back as a structured BinaryResult, never an escaped
 * exception. @p cancel, when non-null, is polled before each
 * executable section; a stopped token yields an error record whose
 * errorKind is "cancelled" or "deadline". @p analyze overrides the
 * per-section step (defaults to analyzeSectionCached with @p cache).
 */
BinaryResult analyzeBinary(const DisassemblyEngine &engine,
                           const LoadResult &load, CacheRuntime *cache,
                           const CancelToken *cancel = nullptr,
                           const SectionAnalyzeFn &analyze = {});

/**
 * Analyzes batches of binaries in parallel. The analyzer itself is
 * cheap to construct; each run() creates a fresh pool so concurrent
 * runs do not interfere.
 */
class BatchAnalyzer
{
  public:
    /**
     * @p metrics, when non-null, receives per-run counters and
     * timers ("batch.*", "pool.*", "pass.*") after every run();
     * it must outlive the analyzer's use.
     */
    explicit BatchAnalyzer(BatchConfig config = {},
                           MetricsRegistry *metrics = nullptr);

    /** Analyze every image; results come back in input order. */
    BatchReport run(const std::vector<const BinaryImage *> &images) const;

    /** Convenience overload over owned images. */
    BatchReport run(const std::vector<BinaryImage> &images) const;

    /**
     * Fault-isolated batch over loader outcomes: items that failed to
     * load become per-item "load" error records carrying their
     * LoadReport, loaded items are analyzed (with "analysis" failures
     * likewise captured per item), and load/fault metrics are
     * recorded. Results stay in input order; the healthy items'
     * results are byte-identical to a run() over just those images.
     */
    BatchReport run(const std::vector<LoadResult> &loads) const;

    /**
     * Load every path (honoring BatchConfig::load, e.g. salvage
     * mode) and run the fault-isolated batch over the outcomes. One
     * hostile input can never take down the batch: I/O errors, parse
     * rejections and analysis exceptions all become structured
     * per-item records.
     */
    BatchReport runFiles(const std::vector<std::string> &paths) const;

    const BatchConfig &config() const { return config_; }

  private:
    BatchConfig config_;
    MetricsRegistry *metrics_;
};

} // namespace accdis::pipeline

#endif // ACCDIS_PIPELINE_BATCH_HH
