#include "synth/assembler.hh"

#include <cassert>

#include "support/bytes.hh"
#include "support/logging.hh"

namespace accdis::synth
{

Label
Assembler::newLabel()
{
    labels_.push_back(0);
    bound_.push_back(false);
    return static_cast<Label>(labels_.size() - 1);
}

void
Assembler::bind(Label label)
{
    assert(label < labels_.size() && !bound_[label]);
    labels_[label] = here();
    bound_[label] = true;
}

Offset
Assembler::labelOffset(Label label) const
{
    assert(label < labels_.size() && bound_[label]);
    return labels_[label];
}

void
Assembler::finalize()
{
    for (const Fixup &fix : fixups_) {
        if (!bound_[fix.label])
            panic("assembler: unbound label in finalize");
        s64 target = static_cast<s64>(labels_[fix.label]);
        switch (fix.kind) {
          case FixKind::Rel8: {
            s64 rel = target - static_cast<s64>(fix.anchor);
            assert(rel >= -128 && rel <= 127);
            out_[fix.at] = static_cast<u8>(static_cast<s8>(rel));
            break;
          }
          case FixKind::Rel32: {
            s64 rel = target - static_cast<s64>(fix.anchor);
            writeLe32(out_, fix.at, static_cast<u32>(rel));
            break;
          }
          case FixKind::Delta32: {
            s64 delta = target - static_cast<s64>(fix.anchor);
            writeLe32(out_, fix.at, static_cast<u32>(delta));
            break;
          }
          case FixKind::Vaddr64:
            writeLe64(out_, fix.at,
                      static_cast<u64>(fix.anchor) +
                          static_cast<u64>(target));
            break;
          case FixKind::Vaddr32:
            writeLe32(out_, fix.at,
                      static_cast<u32>(static_cast<u64>(fix.anchor) +
                                       static_cast<u64>(target)));
            break;
        }
    }
    fixups_.clear();
}

int
Assembler::opSize(int size) const
{
    return mode_ == x86::DecodeMode::X86 && size == 8 ? 4 : size;
}

void
Assembler::emitRex(bool w, u8 reg, u8 index, u8 rm, bool force)
{
    if (mode_ == x86::DecodeMode::X86) {
        // No REX in 32-bit mode; the generator's register pools keep
        // everything in the 8 low GPRs.
        assert(reg == 0xff || reg < 8);
        assert(index == 0xff || index < 8);
        assert(rm == 0xff || rm < 8);
        (void)w;
        (void)force;
        return;
    }
    u8 rex = 0x40;
    if (w)
        rex |= 0x08;
    if (reg != 0xff && reg >= 8)
        rex |= 0x04;
    if (index != 0xff && index >= 8)
        rex |= 0x02;
    if (rm != 0xff && rm >= 8)
        rex |= 0x01;
    if (rex != 0x40 || force)
        emit(rex);
}

void
Assembler::emitModRmReg(u8 reg, u8 rm)
{
    emit(static_cast<u8>(0xc0 | ((reg & 7) << 3) | (rm & 7)));
}

void
Assembler::emitMem(u8 reg, const Mem &mem)
{
    const u8 regBits = static_cast<u8>((reg & 7) << 3);
    // mod=0 rm=101 is RIP-relative only in 64-bit mode; 32-bit code
    // paths materialize absolute addresses instead of using Mem::rip.
    assert(!mem.ripRel || mode_ == x86::DecodeMode::X64);
    if (mem.ripRel) {
        emit(static_cast<u8>(0x00 | regBits | 5));
        appendLe32(out_, static_cast<u32>(mem.disp));
        return;
    }
    assert(mem.base != 0xff || mem.index != 0xff);

    const bool needSib =
        mem.index != 0xff || (mem.base & 7) == 4 || mem.base == 0xff;
    u8 mod;
    bool disp8 = false, disp32 = false;
    if (mem.base == 0xff) {
        // Index-only form: mod 00, SIB base 101, disp32.
        mod = 0x00;
        disp32 = true;
    } else if (mem.disp == 0 && (mem.base & 7) != 5) {
        mod = 0x00;
    } else if (mem.disp >= -128 && mem.disp <= 127) {
        mod = 0x40;
        disp8 = true;
    } else {
        mod = 0x80;
        disp32 = true;
    }

    if (needSib) {
        emit(static_cast<u8>(mod | regBits | 4));
        u8 scale = static_cast<u8>(mem.scale << 6);
        u8 indexBits =
            static_cast<u8>((mem.index == 0xff ? 4 : (mem.index & 7))
                            << 3);
        u8 baseBits = mem.base == 0xff ? 5 : (mem.base & 7);
        assert(mem.index == 0xff || (mem.index & 15) != x86::RSP);
        emit(static_cast<u8>(scale | indexBits | baseBits));
    } else {
        emit(static_cast<u8>(mod | regBits | (mem.base & 7)));
    }

    if (disp8)
        emit(static_cast<u8>(static_cast<s8>(mem.disp)));
    else if (disp32)
        appendLe32(out_, static_cast<u32>(mem.disp));
}

// --- Moves -------------------------------------------------------------

void
Assembler::movRR(Reg dst, Reg src, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, src, 0xff, dst);
    emit(size == 1 ? 0x88 : 0x89);
    emitModRmReg(src, dst);
}

void
Assembler::movRI(Reg dst, s64 imm, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 8 && (imm < INT32_MIN || imm > INT32_MAX)) {
        emitRex(true, 0xff, 0xff, dst);
        emit(static_cast<u8>(0xb8 | (dst & 7)));
        appendLe64(out_, static_cast<u64>(imm));
        return;
    }
    if (size == 8) {
        // Sign-extended imm32 form: REX.W C7 /0.
        emitRex(true, 0xff, 0xff, dst);
        emit(0xc7);
        emitModRmReg(0, dst);
        appendLe32(out_, static_cast<u32>(imm));
        return;
    }
    if (size == 2)
        emit(0x66);
    emitRex(false, 0xff, 0xff, dst);
    if (size == 1) {
        emit(static_cast<u8>(0xb0 | (dst & 7)));
        emit(static_cast<u8>(imm));
    } else if (size == 2) {
        emit(static_cast<u8>(0xb8 | (dst & 7)));
        appendLe16(out_, static_cast<u16>(imm));
    } else {
        emit(static_cast<u8>(0xb8 | (dst & 7)));
        appendLe32(out_, static_cast<u32>(imm));
    }
}

void
Assembler::movRVaddr64(Reg dst, Label label, Addr sectionBase)
{
    startInsn();
    if (mode_ == x86::DecodeMode::X86) {
        // 32-bit pointers: plain mov r32, imm32.
        emit(static_cast<u8>(0xb8 | (dst & 7)));
        Offset at = here();
        appendLe32(out_, 0);
        fixups_.push_back({at, sectionBase, label, FixKind::Vaddr32});
        return;
    }
    emitRex(true, 0xff, 0xff, dst);
    emit(static_cast<u8>(0xb8 | (dst & 7)));
    Offset at = here();
    appendLe64(out_, 0);
    fixups_.push_back({at, sectionBase, label, FixKind::Vaddr64});
}

void
Assembler::movRM(Reg dst, const Mem &mem, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, dst, mem.index, mem.base);
    emit(size == 1 ? 0x8a : 0x8b);
    emitMem(dst, mem);
}

void
Assembler::movMR(const Mem &mem, Reg src, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, src, mem.index, mem.base);
    emit(size == 1 ? 0x88 : 0x89);
    emitMem(src, mem);
}

void
Assembler::movMI(const Mem &mem, s32 imm, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, 0xff, mem.index, mem.base);
    emit(size == 1 ? 0xc6 : 0xc7);
    emitMem(0, mem);
    if (size == 1)
        emit(static_cast<u8>(imm));
    else if (size == 2)
        appendLe16(out_, static_cast<u16>(imm));
    else
        appendLe32(out_, static_cast<u32>(imm));
}

void
Assembler::movzxRM(Reg dst, const Mem &mem, int srcSize)
{
    assert(srcSize == 1 || srcSize == 2);
    startInsn();
    emitRex(false, dst, mem.index, mem.base);
    emit(0x0f);
    emit(srcSize == 1 ? 0xb6 : 0xb7);
    emitMem(dst, mem);
}

void
Assembler::movsxdRM(Reg dst, const Mem &mem)
{
    // 0x63 is arpl in 32-bit mode; jump-table dispatch uses a plain
    // 32-bit load there instead.
    assert(mode_ == x86::DecodeMode::X64);
    startInsn();
    emitRex(true, dst, mem.index, mem.base);
    emit(0x63);
    emitMem(dst, mem);
}

void
Assembler::leaRM(Reg dst, const Mem &mem)
{
    startInsn();
    emitRex(true, dst, mem.index, mem.base);
    emit(0x8d);
    emitMem(dst, mem);
}

void
Assembler::leaRipLabel(Reg dst, Label label, Addr sectionBase)
{
    if (mode_ == x86::DecodeMode::X86) {
        movRVaddr64(dst, label, sectionBase);
        return;
    }
    startInsn();
    emitRex(true, dst, 0xff, 0xff);
    emit(0x8d);
    emit(static_cast<u8>(((dst & 7) << 3) | 5));
    Offset at = here();
    appendLe32(out_, 0);
    fixups_.push_back({at, here(), label, FixKind::Rel32});
}

void
Assembler::leaRipVaddr(Reg dst, Addr targetVaddr, Addr textBase)
{
    if (mode_ == x86::DecodeMode::X86) {
        movRI(dst, static_cast<s64>(static_cast<s32>(targetVaddr)), 4);
        return;
    }
    startInsn();
    emitRex(true, dst, 0xff, 0xff);
    emit(0x8d);
    emit(static_cast<u8>(((dst & 7) << 3) | 5));
    Offset end = here() + 4;
    s64 delta = static_cast<s64>(targetVaddr) -
                static_cast<s64>(textBase + end);
    appendLe32(out_, static_cast<u32>(static_cast<s32>(delta)));
}

// --- ALU -----------------------------------------------------------------

void
Assembler::aluRR(int opIndex, Reg dst, Reg src, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, src, 0xff, dst);
    emit(static_cast<u8>(opIndex * 8 + (size == 1 ? 0x00 : 0x01)));
    emitModRmReg(src, dst);
}

void
Assembler::aluRI(int opIndex, Reg dst, s32 imm, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, 0xff, 0xff, dst);
    if (size != 1 && imm >= -128 && imm <= 127) {
        emit(0x83);
        emitModRmReg(static_cast<u8>(opIndex), dst);
        emit(static_cast<u8>(static_cast<s8>(imm)));
        return;
    }
    emit(size == 1 ? 0x80 : 0x81);
    emitModRmReg(static_cast<u8>(opIndex), dst);
    if (size == 1)
        emit(static_cast<u8>(imm));
    else if (size == 2)
        appendLe16(out_, static_cast<u16>(imm));
    else
        appendLe32(out_, static_cast<u32>(imm));
}

void
Assembler::aluRM(int opIndex, Reg dst, const Mem &mem, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, dst, mem.index, mem.base);
    emit(static_cast<u8>(opIndex * 8 + (size == 1 ? 0x02 : 0x03)));
    emitMem(dst, mem);
}

void
Assembler::testRR(Reg a, Reg b, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, b, 0xff, a);
    emit(size == 1 ? 0x84 : 0x85);
    emitModRmReg(b, a);
}

void
Assembler::imulRR(Reg dst, Reg src, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, dst, 0xff, src);
    emit(0x0f);
    emit(0xaf);
    emitModRmReg(dst, src);
}

void
Assembler::shiftRI(bool right, bool arithmetic, Reg reg, u8 amount,
                   int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, 0xff, 0xff, reg);
    u8 sub = right ? (arithmetic ? 7 : 5) : 4;
    if (amount == 1) {
        emit(size == 1 ? 0xd0 : 0xd1);
        emitModRmReg(sub, reg);
    } else {
        emit(size == 1 ? 0xc0 : 0xc1);
        emitModRmReg(sub, reg);
        emit(amount);
    }
}

void
Assembler::incR(Reg reg, int size)
{
    size = opSize(size);
    startInsn();
    // 32-bit compilers pick the one-byte 0x40|r form (a REX slot in
    // 64-bit mode, where the FF /0 form is the only encoding).
    if (mode_ == x86::DecodeMode::X86 && size == 4) {
        emit(static_cast<u8>(0x40 | (reg & 7)));
        return;
    }
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, 0xff, 0xff, reg);
    emit(size == 1 ? 0xfe : 0xff);
    emitModRmReg(0, reg);
}

void
Assembler::decR(Reg reg, int size)
{
    size = opSize(size);
    startInsn();
    if (mode_ == x86::DecodeMode::X86 && size == 4) {
        emit(static_cast<u8>(0x48 | (reg & 7)));
        return;
    }
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, 0xff, 0xff, reg);
    emit(size == 1 ? 0xfe : 0xff);
    emitModRmReg(1, reg);
}

void
Assembler::negR(Reg reg, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, 0xff, 0xff, reg);
    emit(size == 1 ? 0xf6 : 0xf7);
    emitModRmReg(3, reg);
}

void
Assembler::cmovccRR(u8 cond, Reg dst, Reg src, int size)
{
    size = opSize(size);
    startInsn();
    if (size == 2)
        emit(0x66);
    emitRex(size == 8, dst, 0xff, src);
    emit(0x0f);
    emit(static_cast<u8>(0x40 | (cond & 0x0f)));
    emitModRmReg(dst, src);
}

void
Assembler::setccR(u8 cond, Reg reg)
{
    startInsn();
    // REX needed for spl/bpl/sil/dil and r8b-r15b (64-bit only; the
    // 32-bit encodings 4-7 are ah/ch/dh/bh and need no prefix).
    emitRex(false, 0xff, 0xff, reg,
            mode_ == x86::DecodeMode::X64 && reg >= 4);
    emit(0x0f);
    emit(static_cast<u8>(0x90 | (cond & 0x0f)));
    emitModRmReg(0, reg);
}

// --- Stack ---------------------------------------------------------------

void
Assembler::pushR(Reg reg)
{
    startInsn();
    if (reg >= 8)
        emit(0x41);
    emit(static_cast<u8>(0x50 | (reg & 7)));
}

void
Assembler::popR(Reg reg)
{
    startInsn();
    if (reg >= 8)
        emit(0x41);
    emit(static_cast<u8>(0x58 | (reg & 7)));
}

// --- SSE -----------------------------------------------------------------

void
Assembler::sseMovRR(u8 xmmDst, u8 xmmSrc)
{
    assert(xmmDst < 8 && xmmSrc < 8);
    startInsn();
    emit(0x0f);
    emit(0x28); // movaps
    emitModRmReg(xmmDst, xmmSrc);
}

void
Assembler::sseLoadM(u8 xmmDst, const Mem &mem)
{
    assert(xmmDst < 8);
    startInsn();
    emit(0xf2); // movsd
    emitRex(false, xmmDst, mem.index, mem.base);
    emit(0x0f);
    emit(0x10);
    emitMem(xmmDst, mem);
}

void
Assembler::sseStoreM(const Mem &mem, u8 xmmSrc)
{
    assert(xmmSrc < 8);
    startInsn();
    emit(0xf2);
    emitRex(false, xmmSrc, mem.index, mem.base);
    emit(0x0f);
    emit(0x11);
    emitMem(xmmSrc, mem);
}

void
Assembler::ssePxorRR(u8 xmmDst, u8 xmmSrc)
{
    assert(xmmDst < 8 && xmmSrc < 8);
    startInsn();
    emit(0x66);
    emit(0x0f);
    emit(0xef);
    emitModRmReg(xmmDst, xmmSrc);
}

void
Assembler::sseAddRR(u8 xmmDst, u8 xmmSrc)
{
    assert(xmmDst < 8 && xmmSrc < 8);
    startInsn();
    emit(0xf2); // addsd
    emit(0x0f);
    emit(0x58);
    emitModRmReg(xmmDst, xmmSrc);
}

// --- Control flow ----------------------------------------------------------

void
Assembler::jmp(Label label)
{
    startInsn();
    emit(0xe9);
    Offset at = here();
    appendLe32(out_, 0);
    fixups_.push_back({at, here(), label, FixKind::Rel32});
}

void
Assembler::jmpShort(Label label)
{
    startInsn();
    emit(0xeb);
    Offset at = here();
    emit(0);
    fixups_.push_back({at, here(), label, FixKind::Rel8});
}

void
Assembler::jcc(u8 cond, Label label)
{
    startInsn();
    emit(0x0f);
    emit(static_cast<u8>(0x80 | (cond & 0x0f)));
    Offset at = here();
    appendLe32(out_, 0);
    fixups_.push_back({at, here(), label, FixKind::Rel32});
}

void
Assembler::call(Label label)
{
    startInsn();
    emit(0xe8);
    Offset at = here();
    appendLe32(out_, 0);
    fixups_.push_back({at, here(), label, FixKind::Rel32});
}

void
Assembler::callRipMem(Label label, Addr sectionBase)
{
    startInsn();
    emit(0xff);
    emit(0x15); // modrm: reg=2, rm=101.
    Offset at = here();
    appendLe32(out_, 0);
    if (mode_ == x86::DecodeMode::X86) {
        // Same opcode bytes, different meaning: mod=0 rm=101 is an
        // absolute [disp32] in 32-bit mode, so the slot's virtual
        // address is patched in rather than a RIP delta.
        fixups_.push_back({at, sectionBase, label, FixKind::Vaddr32});
        return;
    }
    fixups_.push_back({at, here(), label, FixKind::Rel32});
}

void
Assembler::callR(Reg reg)
{
    startInsn();
    if (reg >= 8)
        emit(0x41);
    emit(0xff);
    emitModRmReg(2, reg);
}

void
Assembler::jmpR(Reg reg)
{
    startInsn();
    if (reg >= 8)
        emit(0x41);
    emit(0xff);
    emitModRmReg(4, reg);
}

void
Assembler::ret()
{
    startInsn();
    emit(0xc3);
}

void
Assembler::retImm(u16 imm)
{
    startInsn();
    emit(0xc2);
    appendLe16(out_, imm);
}

void
Assembler::leave()
{
    startInsn();
    emit(0xc9);
}

void
Assembler::int3()
{
    startInsn();
    emit(0xcc);
}

void
Assembler::ud2()
{
    startInsn();
    emit(0x0f);
    emit(0x0b);
}

void
Assembler::endbr()
{
    startInsn();
    emit(0xf3);
    emit(0x0f);
    emit(0x1e);
    emit(mode_ == x86::DecodeMode::X86 ? 0xfb : 0xfa);
}

void
Assembler::nop(int length)
{
    assert(length >= 1 && length <= 9);
    startInsn();
    // Canonical Intel-recommended multi-byte NOP sequences.
    static const u8 nops[9][9] = {
        {0x90},
        {0x66, 0x90},
        {0x0f, 0x1f, 0x00},
        {0x0f, 0x1f, 0x40, 0x00},
        {0x0f, 0x1f, 0x44, 0x00, 0x00},
        {0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00},
        {0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00},
        {0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
        {0x66, 0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
    };
    for (int i = 0; i < length; ++i)
        emit(nops[length - 1][i]);
}

void
Assembler::repMovsb()
{
    startInsn();
    emit(0xf3);
    emit(0xa4);
}

// --- Raw data ---------------------------------------------------------------

void
Assembler::rawBytes(ByteSpan bytes)
{
    out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void
Assembler::rawZeros(std::size_t count)
{
    out_.insert(out_.end(), count, 0);
}

void
Assembler::rawLabelDelta32(Label label, Offset base)
{
    Offset at = here();
    appendLe32(out_, 0);
    fixups_.push_back({at, base, label, FixKind::Delta32});
}

void
Assembler::rawLabelVaddr64(Label label, Addr sectionBase)
{
    Offset at = here();
    appendLe64(out_, 0);
    fixups_.push_back({at, sectionBase, label, FixKind::Vaddr64});
}

void
Assembler::rawLabelVaddr32(Label label, Addr sectionBase)
{
    Offset at = here();
    appendLe32(out_, 0);
    fixups_.push_back({at, sectionBase, label, FixKind::Vaddr32});
}

void
Assembler::rawLabelVaddr(Label label, Addr sectionBase)
{
    if (mode_ == x86::DecodeMode::X86)
        rawLabelVaddr32(label, sectionBase);
    else
        rawLabelVaddr64(label, sectionBase);
}

} // namespace accdis::synth
