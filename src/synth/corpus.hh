/**
 * @file
 * Whole-binary synthesis: layout of functions, embedded data regions,
 * jump tables, pointer pools and padding into a BinaryImage with
 * byte-exact ground truth.
 */

#ifndef ACCDIS_SYNTH_CORPUS_HH
#define ACCDIS_SYNTH_CORPUS_HH

#include <string>

#include "image/binary_image.hh"
#include "synth/codegen.hh"
#include "synth/ground_truth.hh"

namespace accdis::synth
{

/** Alignment filler flavor between functions. */
enum class PadKind : u8
{
    Nop,  ///< Multi-byte NOPs (GCC/Clang default).
    Int3, ///< 0xCC filler (MSVC default).
    Zero, ///< Zero bytes.
};

/** Full parameterization of one synthetic binary. */
struct CorpusConfig
{
    u64 seed = 1;
    std::string name = "synth";
    int numFunctions = 64;

    /**
     * Decode mode of the generated code. x86-32 binaries use the
     * 32-bit idioms throughout (no REX, absolute addresses in place
     * of RIP-relative, one-byte inc/dec, 4-byte pointer slots) and
     * stamp the mode on the produced BinaryImage.
     */
    x86::DecodeMode mode = x86::DecodeMode::X64;

    /** Target fraction of section bytes that is embedded data. */
    double dataFraction = 0.15;
    /** Interleave data regions between functions; else pool at end. */
    bool interleaveData = true;
    /** Approximate size of one embedded data region, in bytes. */
    int minDataRegion = 16;
    int maxDataRegion = 256;
    /** Mix weights by DataKind order: ascii strings, consts, blob,
     *  zeros, code-like, utf16 strings. */
    double dataMix[6] = {3.0, 2.0, 1.0, 1.0, 0.0, 0.0};

    /** P(function contains a switch jump table). */
    double jumpTableFraction = 0.25;
    /** Inline tables after each function (true) or pool them (false). */
    bool embedJumpTables = true;
    /**
     * Place switch tables in a separate read-only .rodata section
     * (the GCC layout) instead of .text. Overrides embedJumpTables.
     */
    bool tablesInRodata = false;

    /** Functions reachable only through the pointer pool. */
    double addressTakenFraction = 0.15;
    /** Pointer-width (8/4-byte by mode) function-pointer slots
     *  embedded in .text. */
    int pointerSlots = 8;
    /** Emit mov reg, imm64; call reg idioms (large-code-model /
     *  handwritten style); defeats plain recursive traversal. */
    bool materializedCalls = true;

    /** Function alignment and filler flavor. */
    int alignment = 16;
    PadKind padKind = PadKind::Nop;

    CodeStyle codeStyle;
};

/** Aggregate statistics of a synthesized binary. */
struct SynthStats
{
    u64 totalBytes = 0;
    u64 codeBytes = 0;
    u64 dataBytes = 0;
    u64 paddingBytes = 0;
    u64 instructions = 0;
    int functions = 0;
    int jumpTables = 0;
    int addressTakenFunctions = 0;
};

/** A synthesized binary plus its ground truth (for section 0). */
struct SynthBinary
{
    BinaryImage image;
    GroundTruth truth;
    SynthStats stats;
};

/** Virtual base address of the synthetic .text section. */
inline constexpr Addr kSynthTextBase = 0x401000;

/** Virtual base address of the synthetic .rodata section. */
inline constexpr Addr kSynthRodataBase = 0x500000;

/** Build one binary from a configuration. Deterministic in the seed. */
SynthBinary buildSynthBinary(const CorpusConfig &config);

/**
 * Preset approximating well-behaved GCC output: little embedded data,
 * pooled at the section end, NOP padding.
 */
CorpusConfig gccLikePreset(u64 seed = 1);

/**
 * Preset approximating MSVC output: inline jump tables, interleaved
 * strings/constants in .text, INT3 padding.
 */
CorpusConfig msvcLikePreset(u64 seed = 1);

/**
 * Adversarial preset: heavy interleaved data including code-like
 * bytes, many address-taken functions, zero padding.
 */
CorpusConfig adversarialPreset(u64 seed = 1);

} // namespace accdis::synth

#endif // ACCDIS_SYNTH_CORPUS_HH
