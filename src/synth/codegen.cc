#include "synth/codegen.hh"

#include <cassert>

namespace accdis::synth
{

namespace
{

/** Scratch registers generated code computes in (SysV caller-saved). */
const Reg kScratchPool[] = {x86::RAX, x86::RCX, x86::RDX, x86::RSI,
                            x86::RDI, x86::R8, x86::R9, x86::R10,
                            x86::R11};

/** Callee-saved registers eligible for prologue saves. */
const Reg kSaveePool[] = {x86::RBX, x86::R12, x86::R13, x86::R14,
                          x86::R15};

/** 32-bit pools: no extended registers, esp/ebp reserved. */
const Reg kScratchPool32[] = {x86::RAX, x86::RCX, x86::RDX};

const Reg kSaveePool32[] = {x86::RBX, x86::RSI, x86::RDI};

} // namespace

Reg
CodeGenerator::scratch()
{
    if (as_.mode() == x86::DecodeMode::X86)
        return kScratchPool32[rng_.below(std::size(kScratchPool32))];
    return kScratchPool[rng_.below(std::size(kScratchPool))];
}

Reg
CodeGenerator::scratchOther(Reg avoid)
{
    for (;;) {
        Reg r = scratch();
        if (r != avoid)
            return r;
    }
}

void
CodeGenerator::emitArithStep()
{
    int count = static_cast<int>(rng_.range(1, 4));
    for (int i = 0; i < count; ++i) {
        Reg dst = scratch();
        Reg src = scratchOther(dst);
        int size = rng_.chance(0.7) ? 8 : 4;
        switch (rng_.below(8)) {
          case 0:
            as_.movRR(dst, src, size);
            break;
          case 1:
            as_.movRI(dst, static_cast<s64>(rng_.below(1 << 16)), size);
            break;
          case 2:
            as_.aluRR(static_cast<int>(rng_.weighted(
                          {3, 1, 0.1, 0.1, 1, 2, 1.5, 1})),
                      dst, src, size);
            break;
          case 3:
            as_.aluRI(static_cast<int>(rng_.weighted(
                          {3, 0.5, 0.1, 0.1, 1.5, 2, 0.5, 1})),
                      dst, static_cast<s32>(rng_.below(256)), size);
            break;
          case 4:
            as_.imulRR(dst, src, size);
            break;
          case 5:
            as_.shiftRI(rng_.chance(0.5), rng_.chance(0.5), dst,
                        static_cast<u8>(rng_.range(1, 31)), size);
            break;
          case 6:
            as_.leaRM(dst, Mem::baseIndex(
                               src, scratchOther(dst),
                               static_cast<u8>(rng_.below(4)),
                               static_cast<s32>(rng_.below(64))));
            break;
          default:
            if (rng_.chance(0.5))
                as_.incR(dst, size);
            else
                as_.decR(dst, size);
            break;
        }
    }
}

void
CodeGenerator::emitMemStep()
{
    Reg reg = scratch();
    Mem local = localSlot();
    int size = rng_.chance(0.75) ? 8 : 4;
    switch (rng_.below(5)) {
      case 0:
        as_.movRM(reg, local, size);
        break;
      case 1:
        as_.movMR(local, reg, size);
        break;
      case 2:
        as_.movMI(local, static_cast<s32>(rng_.below(1024)));
        break;
      case 3:
        as_.movzxRM(reg, local, rng_.chance(0.5) ? 1 : 2);
        break;
      default:
        as_.aluRM(static_cast<int>(rng_.weighted(
                      {3, 1, 0, 0, 1, 2, 1, 2})),
                  reg, local, size);
        break;
    }
}

Mem
CodeGenerator::localSlot()
{
    if (hasFrame_) {
        s32 slot = static_cast<s32>(rng_.range(1, 12)) * 8;
        return Mem::baseDisp(x86::RBP, -slot);
    }
    s32 slot =
        static_cast<s32>(rng_.below(static_cast<u64>(frameSize_ / 8))) *
        8;
    return Mem::baseDisp(x86::RSP, slot);
}

void
CodeGenerator::emitSseStep()
{
    u8 a = static_cast<u8>(rng_.below(8));
    u8 b = static_cast<u8>(rng_.below(8));
    Mem local = localSlot();
    switch (rng_.below(5)) {
      case 0:
        as_.sseLoadM(a, local);
        break;
      case 1:
        as_.sseStoreM(local, a);
        break;
      case 2:
        as_.ssePxorRR(a, a);
        break;
      case 3:
        as_.sseAddRR(a, b);
        break;
      default:
        as_.sseMovRR(a, b);
        break;
    }
}

void
CodeGenerator::emitCallStep(const FuncRequest &request)
{
    if (!request.funcPtrSlots.empty() && rng_.chance(0.25)) {
        // Import-style indirect call through a pointer slot.
        as_.callRipMem(request.funcPtrSlots[rng_.below(
                           request.funcPtrSlots.size())],
                       request.sectionBase);
    } else if (!request.regCallees.empty() && rng_.chance(0.2)) {
        // Materialized-constant indirect call: the classic pattern
        // that defeats plain recursive traversal.
        Reg reg = scratch();
        as_.movRVaddr64(reg,
                        request.regCallees[rng_.below(
                            request.regCallees.size())],
                        request.sectionBase);
        as_.callR(reg);
    } else if (!request.callees.empty()) {
        // Argument setup then a direct call: SysV registers in x64,
        // fastcall-style registers in x86-32.
        int args = static_cast<int>(rng_.below(3));
        const bool is32 = as_.mode() == x86::DecodeMode::X86;
        const Reg argRegs64[] = {x86::RDI, x86::RSI, x86::RDX};
        const Reg argRegs32[] = {x86::RCX, x86::RDX, x86::RAX};
        const Reg *argRegs = is32 ? argRegs32 : argRegs64;
        for (int i = 0; i < args; ++i) {
            if (rng_.chance(0.5))
                as_.movRI(argRegs[i],
                          static_cast<s64>(rng_.below(4096)), 8);
            else
                as_.movRR(argRegs[i], scratch(), 8);
        }
        as_.call(request.callees[rng_.below(request.callees.size())]);
        if (rng_.chance(0.4))
            as_.testRR(x86::RAX, x86::RAX, 8);
    } else {
        emitArithStep();
    }
}

void
CodeGenerator::emitIfStep(int depthBudget, const FuncRequest &request)
{
    Reg reg = scratch();
    if (rng_.chance(0.5))
        as_.testRR(reg, reg, rng_.chance(0.5) ? 8 : 4);
    else
        as_.aluRI(7, reg, static_cast<s32>(rng_.below(64)), 8); // cmp
    u8 cond = static_cast<u8>(rng_.range(2, 15));

    Label skip = as_.newLabel();
    as_.jcc(cond, skip);

    auto emitBlock = [&] {
        int steps = static_cast<int>(rng_.range(1, 4));
        for (int i = 0; i < steps; ++i) {
            switch (rng_.below(4)) {
              case 0:
                emitArithStep();
                break;
              case 1:
                emitMemStep();
                break;
              case 2:
                emitCallStep(request);
                break;
              default:
                if (depthBudget > 0)
                    emitIfStep(depthBudget - 1, request);
                else
                    emitArithStep();
                break;
            }
        }
    };

    emitBlock();
    if (rng_.chance(style_.earlyReturnFraction)) {
        // Early-exit path with its own epilogue.
        if (rng_.chance(0.5))
            as_.movRI(x86::RAX, static_cast<s64>(rng_.below(16)), 4);
        emitEpilogue();
    } else if (rng_.chance(0.3)) {
        // if/else diamond.
        Label end = as_.newLabel();
        as_.jmp(end);
        as_.bind(skip);
        emitBlock();
        as_.bind(end);
        return;
    }
    as_.bind(skip);
}

void
CodeGenerator::emitLoopStep()
{
    Reg counter = scratch();
    as_.movRI(counter, static_cast<s64>(rng_.range(2, 64)), 4);
    Label top = as_.newLabel();
    as_.bind(top);
    int steps = static_cast<int>(rng_.range(1, 3));
    for (int i = 0; i < steps; ++i) {
        if (rng_.chance(0.5))
            emitArithStep();
        else
            emitMemStep();
    }
    as_.decR(counter, 4);
    as_.jcc(5, top); // jne backward
}

void
CodeGenerator::emitJumpTable(const FuncRequest &request,
                             FuncResult &result)
{
    const bool rodata = request.jumpTableVaddr != 0;
    const int cases = rodata ? request.jumpTableCases
                             : static_cast<int>(rng_.range(3, 10));
    const Reg sel = x86::RDI;
    const Reg tbl = x86::RAX;
    const Reg off = x86::RDX;

    Label join = as_.newLabel();
    Label table = rodata ? kNoLabel : as_.newLabel();

    // Bounds check + the canonical jump-table dispatch sequence:
    // PIC (rip-relative base, movsxd) in x64, absolute table address
    // and a plain 32-bit load in x86-32. Both layouts store
    // case-minus-table deltas, so dispatch is load + add + jmp reg.
    as_.aluRI(7, sel, cases - 1, 4); // cmp sel, N-1
    as_.jcc(7, join);                // ja -> default path (join)
    if (rodata)
        as_.leaRipVaddr(tbl, request.jumpTableVaddr,
                        request.sectionBase);
    else
        as_.leaRipLabel(tbl, table, request.sectionBase);
    if (as_.mode() == x86::DecodeMode::X86) {
        as_.movRM(off, Mem::baseIndex(tbl, sel, 2), 4);
        as_.aluRR(0, tbl, off, 4); // add tbl, off
    } else {
        as_.movsxdRM(off, Mem::baseIndex(tbl, sel, 2));
        as_.aluRR(0, tbl, off, 8); // add tbl, off
    }
    as_.jmpR(tbl);

    // Case bodies; every case jumps (or falls through) to join.
    std::vector<Label> caseLabels;
    for (int i = 0; i < cases; ++i) {
        Label c = as_.newLabel();
        as_.bind(c);
        caseLabels.push_back(c);
        emitArithStep();
        if (rng_.chance(0.3))
            emitMemStep();
        if (i + 1 < cases)
            as_.jmp(join);
    }
    as_.bind(join);

    ++result.numJumpTables;
    if (rodata)
        result.rodataTables.emplace_back(request.jumpTableVaddr,
                                         caseLabels);
    else if (request.embedJumpTable)
        pendingEmbedded_.emplace_back(table, caseLabels);
    else
        result.pendingTables.emplace_back(table, caseLabels);
}

void
CodeGenerator::emitEpilogue()
{
    if (hasFrame_) {
        as_.leave();
        as_.ret();
        return;
    }
    as_.aluRI(0, x86::RSP, frameSize_, 8); // add rsp, N
    for (auto it = savedRegs_.rbegin(); it != savedRegs_.rend(); ++it)
        as_.popR(*it);
    as_.ret();
}

FuncResult
CodeGenerator::generate(const FuncRequest &request)
{
    FuncResult result;
    pendingEmbedded_.clear();
    result.entry =
        request.entry != kNoLabel ? request.entry : as_.newLabel();
    as_.bind(result.entry);
    result.start = as_.here();

    // Prologue. Two flavors: rbp frame (leave/ret epilogue, no callee
    // saves to keep the unwind trivial) or frameless with saves.
    if (style_.emitEndbr && rng_.chance(0.9))
        as_.endbr();
    hasFrame_ = !rng_.chance(style_.framelessFraction);
    savedRegs_.clear();
    if (hasFrame_) {
        as_.pushR(x86::RBP);
        as_.movRR(x86::RBP, x86::RSP, 8);
    } else {
        int saves = static_cast<int>(rng_.below(3));
        const bool is32 = as_.mode() == x86::DecodeMode::X86;
        for (int i = 0; i < saves; ++i)
            savedRegs_.push_back(is32 ? kSaveePool32[i]
                                      : kSaveePool[i]);
        for (Reg r : savedRegs_)
            as_.pushR(r);
    }
    frameSize_ = static_cast<int>(rng_.range(2, 16)) * 8;
    as_.aluRI(5, x86::RSP, frameSize_, 8); // sub rsp, N

    // Body.
    bool wantTable = request.jumpTable;
    bool wantLoop = rng_.chance(style_.loopFraction);
    int steps = static_cast<int>(
        rng_.range(style_.minBodySteps, style_.maxBodySteps));
    for (int i = 0; i < steps; ++i) {
        if (wantTable && i == steps / 2) {
            emitJumpTable(request, result);
            wantTable = false;
            continue;
        }
        switch (rng_.weighted(
            {4, 3, 1.5, 1.5, style_.sseFraction * 10, 1})) {
          case 0:
            emitArithStep();
            break;
          case 1:
            emitMemStep();
            break;
          case 2:
            emitCallStep(request);
            break;
          case 3:
            emitIfStep(1, request);
            break;
          case 4:
            emitSseStep();
            break;
          default:
            if (wantLoop) {
                emitLoopStep();
                wantLoop = false;
            } else {
                emitArithStep();
            }
            break;
        }
    }
    if (wantTable)
        emitJumpTable(request, result);

    // Return value then the final epilogue — or a tail call, which
    // ends the function with a jmp into another function's entry.
    if (!request.callees.empty() && rng_.chance(0.12)) {
        if (hasFrame_) {
            as_.leave();
        } else {
            as_.aluRI(0, x86::RSP, frameSize_, 8);
            for (auto it = savedRegs_.rbegin();
                 it != savedRegs_.rend(); ++it)
                as_.popR(*it);
        }
        as_.jmp(request.callees[rng_.below(request.callees.size())]);
    } else {
        if (rng_.chance(0.6))
            as_.movRI(x86::RAX, static_cast<s64>(rng_.below(256)), 4);
        emitEpilogue();
    }

    // Materialize embedded jump tables after the function body,
    // exactly where MSVC places them: inside .text, after the ret.
    for (const auto &[table, cases] : pendingEmbedded_) {
        as_.bind(table);
        Offset tableStart = as_.here();
        for (Label c : cases)
            as_.rawLabelDelta32(c, tableStart);
        result.dataRegions.emplace_back(tableStart, as_.here());
    }
    pendingEmbedded_.clear();

    result.end = as_.here();
    return result;
}

} // namespace accdis::synth
