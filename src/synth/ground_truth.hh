/**
 * @file
 * Byte-exact ground truth for a synthesized binary.
 */

#ifndef ACCDIS_SYNTH_GROUND_TRUTH_HH
#define ACCDIS_SYNTH_GROUND_TRUTH_HH

#include <algorithm>
#include <optional>
#include <vector>

#include "support/interval_map.hh"
#include "support/types.hh"

namespace accdis::synth
{

/** Ground-truth classification of a byte in an executable section. */
enum class ByteClass : u8
{
    Code,    ///< Byte of a real instruction.
    Data,    ///< Embedded data (strings, tables, constants, blobs).
    Padding, ///< Alignment filler; excluded from accuracy metrics, as
             ///< both code and data answers are defensible for it.
};

/** What produced a ground-truth data byte (error-breakdown axis). */
enum class DataOrigin : u8
{
    AsciiStrings,
    ConstPool,
    RandomBlob,
    ZeroRun,
    CodeLike,
    Utf16Strings,
    JumpTable,
    PointerPool,
    NumOrigins,
};

/** Short label for a DataOrigin. */
const char *dataOriginName(DataOrigin origin);

/**
 * Per-section ground truth: interval labels for every byte plus the
 * exact set of instruction-start offsets.
 */
class GroundTruth
{
  public:
    /** Label [begin, end) with @p cls. */
    void
    setClass(Offset begin, Offset end, ByteClass cls)
    {
        classes_.assign(begin, end, cls);
    }

    /** Class of the byte at @p off (Data when unlabeled). */
    ByteClass
    classAt(Offset off) const
    {
        auto cls = classes_.at(off);
        return cls ? *cls : ByteClass::Data;
    }

    /** Record the instruction-start offsets (must be sorted). */
    void
    setInsnStarts(std::vector<Offset> starts)
    {
        insnStarts_ = std::move(starts);
    }

    /** Record the true function-entry offsets (must be sorted). */
    void
    setFunctionStarts(std::vector<Offset> starts)
    {
        functionStarts_ = std::move(starts);
    }

    /** Sorted true function-entry offsets. */
    const std::vector<Offset> &
    functionStarts() const
    {
        return functionStarts_;
    }

    /** True when @p off is a function entry. */
    bool
    isFunctionStart(Offset off) const
    {
        return std::binary_search(functionStarts_.begin(),
                                  functionStarts_.end(), off);
    }

    /** Sorted true instruction-start offsets. */
    const std::vector<Offset> &insnStarts() const { return insnStarts_; }

    /** True when @p off starts a real instruction. */
    bool
    isInsnStart(Offset off) const
    {
        return std::binary_search(insnStarts_.begin(), insnStarts_.end(),
                                  off);
    }

    /** Total bytes with the given class. */
    u64
    bytesOf(ByteClass cls) const
    {
        return classes_.totalBytes(cls);
    }

    /** All labeled intervals in ascending order. */
    std::vector<IntervalMap<ByteClass>::Entry>
    intervals() const
    {
        return classes_.entries();
    }

    /** Record the origin of a data interval. */
    void
    setDataOrigin(Offset begin, Offset end, DataOrigin origin)
    {
        origins_.assign(begin, end, origin);
    }

    /** Origin of the data byte at @p off, if recorded. */
    std::optional<DataOrigin>
    dataOriginAt(Offset off) const
    {
        return origins_.at(off);
    }

  private:
    IntervalMap<ByteClass> classes_;
    IntervalMap<DataOrigin> origins_;
    std::vector<Offset> insnStarts_;
    std::vector<Offset> functionStarts_;
};

} // namespace accdis::synth

#endif // ACCDIS_SYNTH_GROUND_TRUTH_HH
