/**
 * @file
 * Generator of compiler-idiomatic synthetic x86-64 functions.
 */

#ifndef ACCDIS_SYNTH_CODEGEN_HH
#define ACCDIS_SYNTH_CODEGEN_HH

#include <utility>
#include <vector>

#include "support/rng.hh"
#include "synth/assembler.hh"

namespace accdis::synth
{

/** Knobs controlling the flavor of generated code. */
struct CodeStyle
{
    bool emitEndbr = true;        ///< CET endbr64 at function entry.
    double framelessFraction = 0.35; ///< P(function without rbp frame).
    double sseFraction = 0.08;    ///< P(an SSE step inside a body).
    double loopFraction = 0.5;    ///< P(a function contains a loop).
    double earlyReturnFraction = 0.3; ///< P(extra early-exit path).
    int minBodySteps = 3;
    int maxBodySteps = 24;
};

/** Sentinel meaning "no externally provided label". */
inline constexpr Label kNoLabel = ~Label{0};

/** Request describing one function to generate. */
struct FuncRequest
{
    /** Pre-created entry label to bind at the function start. */
    Label entry = kNoLabel;
    /** Direct-call targets available to this function. */
    std::vector<Label> callees;
    /** Labels of 8-byte function-pointer slots for indirect calls. */
    std::vector<Label> funcPtrSlots;
    /**
     * Functions callable through a materialized register constant
     * (mov reg, imm64; call reg). Requires sectionBase.
     */
    std::vector<Label> regCallees;
    /** Virtual base of the section (for absolute-address idioms). */
    Addr sectionBase = 0;
    /** Generate a switch lowered through a jump table. */
    bool jumpTable = false;
    /**
     * When non-zero, the table lives at this absolute address in a
     * read-only data section (GCC layout); jumpTableCases must give
     * the pre-allocated case count. When zero, the table is placed
     * in .text per embedJumpTable.
     */
    Addr jumpTableVaddr = 0;
    int jumpTableCases = 0;
    /** Place the jump-table bytes inline after the function body
     *  (MSVC-style); otherwise the table is returned in pendingTables
     *  for the caller to materialize in a pooled region. */
    bool embedJumpTable = true;
};

/** What was generated for one function. */
struct FuncResult
{
    Label entry = 0;
    Offset start = 0;
    Offset end = 0;
    /** Embedded data intervals (inline jump tables). */
    std::vector<std::pair<Offset, Offset>> dataRegions;
    /** Tables to materialize in .rodata: (table vaddr, case labels). */
    std::vector<std::pair<Addr, std::vector<Label>>> rodataTables;
    /** Jump-table descriptors: (table offset label, case count). */
    int numJumpTables = 0;
    /** Labels of jump tables that must be materialized elsewhere. */
    std::vector<std::pair<Label, std::vector<Label>>> pendingTables;
};

/**
 * Emits one synthetic function at a time into a shared Assembler,
 * mimicking the instruction mix and idioms of optimized compiler
 * output (prologues/epilogues, forward conditional blocks, loops,
 * direct and indirect calls, switch jump tables).
 */
class CodeGenerator
{
  public:
    CodeGenerator(Assembler &as, Rng &rng, CodeStyle style = {})
        : as_(as), rng_(rng), style_(style)
    {}

    /** Generate one function; the entry label is bound at its start. */
    FuncResult generate(const FuncRequest &request);

  private:
    void emitArithStep();
    void emitMemStep();
    void emitSseStep();
    void emitCallStep(const FuncRequest &request);
    void emitIfStep(int depthBudget, const FuncRequest &request);
    void emitLoopStep();
    void emitJumpTable(const FuncRequest &request, FuncResult &result);
    void emitEpilogue();

    Reg scratch();
    Reg scratchOther(Reg avoid);
    Mem localSlot();

    Assembler &as_;
    Rng &rng_;
    CodeStyle style_;

    // Per-function state.
    bool hasFrame_ = false;
    int frameSize_ = 0;
    std::vector<Reg> savedRegs_;
    std::vector<std::pair<Label, std::vector<Label>>> pendingEmbedded_;
};

} // namespace accdis::synth

#endif // ACCDIS_SYNTH_CODEGEN_HH
