#include "synth/datagen.hh"

#include <cstring>

#include "support/bytes.hh"
#include "synth/assembler.hh"

namespace accdis::synth
{

namespace
{

const char *const kWords[] = {
    "error", "warning", "invalid", "argument", "file", "not", "found",
    "usage", "option", "value", "failed", "open", "read", "write",
    "memory", "allocation", "unexpected", "token", "parse", "config",
    "version", "help", "output", "input", "buffer", "overflow",
    "connection", "timeout", "retry", "socket", "path", "directory",
};

} // namespace

ByteVec
DataGenerator::asciiStrings(std::size_t size)
{
    ByteVec out;
    while (out.size() < size) {
        int words = static_cast<int>(rng_.range(1, 6));
        for (int w = 0; w < words; ++w) {
            const char *word = kWords[rng_.below(std::size(kWords))];
            if (w > 0)
                out.push_back(rng_.chance(0.8) ? ' ' : '_');
            out.insert(out.end(), word, word + std::strlen(word));
        }
        if (rng_.chance(0.3)) {
            const char fmt[] = ": %s (%d)";
            out.insert(out.end(), fmt, fmt + sizeof(fmt) - 1);
        }
        out.push_back('\0');
    }
    out.resize(size);
    if (!out.empty())
        out.back() = '\0';
    return out;
}

ByteVec
DataGenerator::constPool(std::size_t size)
{
    ByteVec out;
    while (out.size() + 8 <= size) {
        switch (rng_.below(4)) {
          case 0:
            // Small positive integer, 8 bytes.
            appendLe64(out, rng_.below(1 << 20));
            break;
          case 1:
            // Double constant near 1.0 (realistic FP pool entry).
            {
                double v = (static_cast<double>(rng_.below(2000)) -
                            1000.0) /
                           64.0;
                u64 bits;
                std::memcpy(&bits, &v, sizeof(bits));
                appendLe64(out, bits);
            }
            break;
          case 2:
            // Two 4-byte masks / small constants.
            appendLe32(out, static_cast<u32>(rng_.below(256)));
            appendLe32(out, rng_.chance(0.5) ? 0xffffffffu
                                             : 0x7fffffffu);
            break;
          default:
            // Pointer-looking value (page-aligned-ish).
            appendLe64(out, 0x400000 + rng_.below(1 << 22) * 16);
            break;
        }
    }
    out.resize(size);
    return out;
}

ByteVec
DataGenerator::randomBlob(std::size_t size)
{
    ByteVec out(size);
    rng_.fill(out.data(), out.size());
    return out;
}

ByteVec
DataGenerator::codeLike(std::size_t size)
{
    // Assemble a straight-line instruction soup: real encodings with a
    // realistic opcode mix, but the bytes are data in the ground
    // truth. Statistical models cannot tell these from code; only
    // reachability/behavioral evidence can.
    ByteVec out;
    Assembler as(out);
    const Reg pool[] = {x86::RAX, x86::RCX, x86::RDX, x86::RSI,
                        x86::RDI, x86::R8, x86::R9};
    while (out.size() < size) {
        Reg a = pool[rng_.below(std::size(pool))];
        Reg b = pool[rng_.below(std::size(pool))];
        switch (rng_.below(6)) {
          case 0:
            as.movRR(a, b, rng_.chance(0.5) ? 8 : 4);
            break;
          case 1:
            as.aluRR(static_cast<int>(rng_.below(8)), a, b, 8);
            break;
          case 2:
            as.movRI(a, static_cast<s64>(rng_.below(65536)), 4);
            break;
          case 3:
            as.movRM(a, Mem::baseDisp(b, static_cast<s32>(
                                             rng_.below(128))),
                     8);
            break;
          case 4:
            as.leaRM(a, Mem::baseDisp(b,
                                      static_cast<s32>(rng_.below(64))));
            break;
          default:
            as.aluRI(static_cast<int>(rng_.below(8)), a,
                     static_cast<s32>(rng_.below(256)), 4);
            break;
        }
    }
    out.resize(size);
    return out;
}

ByteVec
DataGenerator::utf16Strings(std::size_t size)
{
    // UTF-16LE words: ASCII code units interleaved with zero bytes,
    // the dominant string flavor in Windows binaries.
    ByteVec ascii = asciiStrings((size + 1) / 2);
    ByteVec out;
    out.reserve(size + 1);
    for (u8 b : ascii) {
        out.push_back(b);
        out.push_back(0);
        if (out.size() >= size)
            break;
    }
    out.resize(size, 0);
    return out;
}

ByteVec
DataGenerator::generate(DataKind kind, std::size_t size)
{
    switch (kind) {
      case DataKind::AsciiStrings:
        return asciiStrings(size);
      case DataKind::Utf16Strings:
        return utf16Strings(size);
      case DataKind::ConstPool:
        return constPool(size);
      case DataKind::RandomBlob:
        return randomBlob(size);
      case DataKind::ZeroRun:
        return ByteVec(size, 0);
      case DataKind::CodeLike:
        return codeLike(size);
    }
    return ByteVec(size, 0);
}

} // namespace accdis::synth
