#include "synth/ground_truth.hh"

namespace accdis::synth
{

const char *
dataOriginName(DataOrigin origin)
{
    switch (origin) {
      case DataOrigin::AsciiStrings: return "ascii-strings";
      case DataOrigin::ConstPool: return "const-pool";
      case DataOrigin::RandomBlob: return "random-blob";
      case DataOrigin::ZeroRun: return "zero-run";
      case DataOrigin::CodeLike: return "code-like";
      case DataOrigin::Utf16Strings: return "utf16-strings";
      case DataOrigin::JumpTable: return "jump-table";
      case DataOrigin::PointerPool: return "pointer-pool";
      default: return "?";
    }
}

} // namespace accdis::synth
