/**
 * @file
 * A small x86 assembler used by the synthetic binary generator.
 *
 * Emits the compiler-idiomatic instruction subset with label/fixup
 * management for intra-section branches, calls and RIP-relative data
 * references. Every emitted byte sequence is, by construction, a valid
 * encoding for the accdis decoder (round-trip tested).
 *
 * The assembler is mode-aware (x86/mode.hh): under DecodeMode::X86 it
 * never emits REX bytes (the register pool is the 8 low GPRs), clamps
 * 64-bit operand requests to the 32-bit native width, replaces the
 * RIP-relative idioms with their absolute-address 32-bit counterparts
 * (mov reg, imm32 address materialization; call [disp32] import
 * stubs) and uses the one-byte 0x40-0x4F inc/dec forms a 32-bit
 * compiler would pick.
 */

#ifndef ACCDIS_SYNTH_ASSEMBLER_HH
#define ACCDIS_SYNTH_ASSEMBLER_HH

#include <vector>

#include "support/types.hh"
#include "x86/mode.hh"
#include "x86/registers.hh"

namespace accdis::synth
{

using x86::Reg;

/** Handle for a not-yet-resolved position in the output buffer. */
using Label = u32;

/** Memory operand: [base + index*scale + disp] or [rip + disp]. */
struct Mem
{
    u8 base = 0xff;   ///< GPR number or 0xff for none.
    u8 index = 0xff;  ///< GPR number or 0xff for none.
    u8 scale = 0;     ///< log2 of the scale (0,1,2,3).
    s32 disp = 0;
    bool ripRel = false;

    static Mem
    baseDisp(u8 base, s32 disp)
    {
        Mem m;
        m.base = base;
        m.disp = disp;
        return m;
    }

    static Mem
    baseIndex(u8 base, u8 index, u8 scale, s32 disp = 0)
    {
        Mem m;
        m.base = base;
        m.index = index;
        m.scale = scale;
        m.disp = disp;
        return m;
    }

    static Mem
    rip(s32 disp = 0)
    {
        Mem m;
        m.ripRel = true;
        m.disp = disp;
        return m;
    }
};

/**
 * Appends encoded instructions to an external byte buffer and records
 * every instruction-start offset (the generator's ground truth).
 */
class Assembler
{
  public:
    explicit Assembler(ByteVec &out,
                       x86::DecodeMode mode = x86::DecodeMode::X64)
        : out_(out), mode_(mode)
    {}

    /** The decode mode emitted encodings are valid under. */
    x86::DecodeMode mode() const { return mode_; }

    /** Current offset (== size of the buffer so far). */
    Offset here() const { return out_.size(); }

    /** Offsets at which instructions were emitted, in order. */
    const std::vector<Offset> &insnStarts() const { return starts_; }

    // --- Labels -------------------------------------------------------
    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current offset. */
    void bind(Label label);

    /** Offset a bound label resolves to. @pre bound. */
    Offset labelOffset(Label label) const;

    /**
     * Resolve all recorded fixups against their bound labels.
     * @pre every referenced label has been bound.
     */
    void finalize();

    // --- Moves --------------------------------------------------------
    void movRR(Reg dst, Reg src, int size = 8);
    void movRI(Reg dst, s64 imm, int size = 8);
    /** mov dst, sectionBase + offset(label): the 10-byte movabs
     *  imm64 form in x64, the 5-byte mov r32, imm32 form in x86-32. */
    void movRVaddr64(Reg dst, Label label, Addr sectionBase);
    /** mov dst, [mem] */
    void movRM(Reg dst, const Mem &mem, int size = 8);
    /** mov [mem], src */
    void movMR(const Mem &mem, Reg src, int size = 8);
    /** mov dword/qword ptr [mem], imm32 */
    void movMI(const Mem &mem, s32 imm, int size = 4);
    void movzxRM(Reg dst, const Mem &mem, int srcSize);
    /** movsxd dst, dword ptr [mem]. @pre mode() == X64. */
    void movsxdRM(Reg dst, const Mem &mem);
    void leaRM(Reg dst, const Mem &mem);
    /**
     * Materialize the address of @p label into @p dst: in x64
     * lea dst, [rip + (label - end-of-insn)]; in x86-32 the PC-less
     * equivalent mov dst, imm32 (needs @p sectionBase to resolve the
     * label to a virtual address; ignored in x64).
     */
    void leaRipLabel(Reg dst, Label label, Addr sectionBase = 0);
    /**
     * Materialize the absolute virtual address @p targetVaddr (in
     * another section) into @p dst: lea dst, [rip + delta] in x64,
     * mov dst, imm32 in x86-32. @p textBase is the virtual address of
     * this buffer's first byte.
     */
    void leaRipVaddr(Reg dst, Addr targetVaddr, Addr textBase);

    // --- ALU ----------------------------------------------------------
    /** opIndex: 0 add, 1 or, 2 adc, 3 sbb, 4 and, 5 sub, 6 xor, 7 cmp */
    void aluRR(int opIndex, Reg dst, Reg src, int size = 8);
    void aluRI(int opIndex, Reg dst, s32 imm, int size = 8);
    void aluRM(int opIndex, Reg dst, const Mem &mem, int size = 8);
    void testRR(Reg a, Reg b, int size = 8);
    void imulRR(Reg dst, Reg src, int size = 8);
    void shiftRI(bool right, bool arithmetic, Reg reg, u8 amount,
                 int size = 8);
    void incR(Reg reg, int size = 8);
    void decR(Reg reg, int size = 8);
    void negR(Reg reg, int size = 8);
    void cmovccRR(u8 cond, Reg dst, Reg src, int size = 8);
    void setccR(u8 cond, Reg reg);

    // --- Stack --------------------------------------------------------
    void pushR(Reg reg);
    void popR(Reg reg);

    // --- SSE (register forms, for instruction-mix realism) -------------
    /** movaps/movapd-style register move between xmm<a>, xmm<b>. */
    void sseMovRR(u8 xmmDst, u8 xmmSrc);
    /** movsd xmm<dst>, [mem] */
    void sseLoadM(u8 xmmDst, const Mem &mem);
    /** movsd [mem], xmm<src> */
    void sseStoreM(const Mem &mem, u8 xmmSrc);
    /** pxor xmm<dst>, xmm<src> */
    void ssePxorRR(u8 xmmDst, u8 xmmSrc);
    /** addsd xmm<dst>, xmm<src> */
    void sseAddRR(u8 xmmDst, u8 xmmSrc);

    // --- Control flow --------------------------------------------------
    void jmp(Label label);
    /** Unconditional jmp forced to the rel8 form. @pre target near. */
    void jmpShort(Label label);
    void jcc(u8 cond, Label label);
    void call(Label label);
    /**
     * Import-style memory-indirect call through the slot at @p label:
     * call qword ptr [rip + (label - end)] in x64, the absolute
     * call dword ptr [disp32] form in x86-32 (needs @p sectionBase to
     * resolve the slot's virtual address; ignored in x64).
     */
    void callRipMem(Label label, Addr sectionBase = 0);
    void callR(Reg reg);
    void jmpR(Reg reg);
    void ret();
    void retImm(u16 imm);
    void leave();
    void int3();
    void ud2();
    /** CET landing pad: endbr64 in x64 mode, endbr32 in x86-32. */
    void endbr();
    /** Canonical multi-byte NOP of the given length (1-9 bytes). */
    void nop(int length = 1);
    void repMovsb();

    // --- Raw data (not recorded as instructions) ------------------------
    /** Append raw bytes (data regions; not an instruction). */
    void rawBytes(ByteSpan bytes);
    /** Append @p count zero bytes. */
    void rawZeros(std::size_t count);
    /** Append a 32-bit slot that will hold label minus @p base. */
    void rawLabelDelta32(Label label, Offset base);
    /** Append a 64-bit slot holding sectionBase + label offset. */
    void rawLabelVaddr64(Label label, Addr sectionBase);
    /** Append a 32-bit slot holding sectionBase + label offset
     *  (x86-32 pointer width). */
    void rawLabelVaddr32(Label label, Addr sectionBase);
    /** Append a pointer-width slot for the current mode. */
    void rawLabelVaddr(Label label, Addr sectionBase);

  private:
    enum class FixKind : u8
    {
        Rel8,     ///< 1-byte displacement relative to the next byte.
        Rel32,    ///< 4-byte displacement relative to fixed end.
        Delta32,  ///< 4-byte label offset minus stored base.
        Vaddr64,  ///< 8-byte absolute address (base + label offset).
        Vaddr32,  ///< 4-byte absolute address (base + label offset).
    };

    struct Fixup
    {
        Offset at;      ///< Buffer position of the displacement field.
        Offset anchor;  ///< "next instruction" offset (rel) or base.
        Label label;
        FixKind kind;
    };

    void startInsn() { starts_.push_back(out_.size()); }
    void emit(u8 b) { out_.push_back(b); }
    void emitRex(bool w, u8 reg, u8 index, u8 rm, bool force = false);
    void emitModRmReg(u8 reg, u8 rm);
    void emitMem(u8 reg, const Mem &mem);
    /** Operand size after the mode's width clamp (x86-32 has no
     *  64-bit operands; native width requests become 4). */
    int opSize(int size) const;

    ByteVec &out_;
    x86::DecodeMode mode_ = x86::DecodeMode::X64;
    std::vector<Offset> starts_;
    std::vector<Offset> labels_;
    std::vector<bool> bound_;
    std::vector<Fixup> fixups_;
};

} // namespace accdis::synth

#endif // ACCDIS_SYNTH_ASSEMBLER_HH
