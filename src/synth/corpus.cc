#include "synth/corpus.hh"

#include <algorithm>
#include <cassert>

#include "support/bytes.hh"
#include "synth/datagen.hh"

namespace accdis::synth
{

namespace
{

/** Tracks ground-truth intervals as the section is laid out. */
class TruthBuilder
{
  public:
    void
    mark(Offset begin, Offset end, ByteClass cls)
    {
        if (begin < end)
            spans_.push_back({begin, end, cls});
    }

    void
    markData(Offset begin, Offset end, DataOrigin origin)
    {
        mark(begin, end, ByteClass::Data);
        if (begin < end)
            origins_.push_back({begin, end, origin});
    }

    GroundTruth
    build(std::vector<Offset> insnStarts) const
    {
        GroundTruth truth;
        for (const auto &s : spans_)
            truth.setClass(s.begin, s.end, s.cls);
        for (const auto &o : origins_)
            truth.setDataOrigin(o.begin, o.end, o.origin);
        std::sort(insnStarts.begin(), insnStarts.end());
        truth.setInsnStarts(std::move(insnStarts));
        return truth;
    }

  private:
    struct Span
    {
        Offset begin;
        Offset end;
        ByteClass cls;
    };
    struct OriginSpan
    {
        Offset begin;
        Offset end;
        DataOrigin origin;
    };
    std::vector<Span> spans_;
    std::vector<OriginSpan> origins_;
};

DataKind
pickDataKind(Rng &rng, const CorpusConfig &config)
{
    std::vector<double> weights(config.dataMix, config.dataMix + 6);
    return static_cast<DataKind>(rng.weighted(weights));
}

void
emitPadding(Assembler &as, const CorpusConfig &config, Rng &rng,
            TruthBuilder &truth)
{
    Offset here = as.here();
    u64 align = static_cast<u64>(config.alignment);
    u64 pad = (align - (here % align)) % align;
    if (pad == 0)
        return;
    Offset begin = as.here();
    switch (config.padKind) {
      case PadKind::Nop: {
        // A run of canonical multi-byte NOPs, longest first.
        u64 left = pad;
        while (left > 0) {
            int n = static_cast<int>(std::min<u64>(left, 9));
            as.nop(n);
            left -= static_cast<u64>(n);
        }
        break;
      }
      case PadKind::Int3:
        for (u64 i = 0; i < pad; ++i)
            as.int3();
        break;
      case PadKind::Zero:
        as.rawZeros(pad);
        break;
    }
    truth.mark(begin, as.here(), ByteClass::Padding);
    (void)rng;
}

} // namespace

SynthBinary
buildSynthBinary(const CorpusConfig &config)
{
    Rng rng(config.seed);
    ByteVec text;
    Assembler as(text, config.mode);
    DataGenerator datagen(rng);
    TruthBuilder truth;
    SynthBinary result;
    result.image = BinaryImage(config.name);
    result.image.setMode(config.mode);

    const int n = std::max(1, config.numFunctions);

    // Pre-create entry labels so call fixups can reference any
    // function regardless of generation order.
    std::vector<Label> entries(n);
    for (int i = 0; i < n; ++i)
        entries[i] = as.newLabel();

    // Decide which functions are only reachable indirectly.
    std::vector<bool> addressTaken(n, false);
    for (int i = 1; i < n; ++i) {
        if (rng.chance(config.addressTakenFraction)) {
            addressTaken[i] = true;
            ++result.stats.addressTakenFunctions;
        }
    }

    // Pointer-pool slots (labels bound when the pool is emitted).
    int slots = std::max(0, config.pointerSlots);
    std::vector<Label> ptrSlots(static_cast<std::size_t>(slots));
    for (auto &slot : ptrSlots)
        slot = as.newLabel();

    CodeGenerator codegen(as, rng, config.codeStyle);
    u64 dataEmitted = 0;
    u64 rodataCursor = 0;
    std::vector<Offset> functionStarts;
    std::vector<std::pair<Label, std::vector<Label>>> pooledTables;
    std::vector<std::pair<Addr, std::vector<Label>>> rodataTables;

    auto emitDataRegion = [&](std::size_t size) {
        DataKind kind = pickDataKind(rng, config);
        ByteVec blob = datagen.generate(kind, size);
        Offset begin = as.here();
        as.rawBytes(blob);
        truth.markData(begin, as.here(),
                       static_cast<DataOrigin>(kind));
        dataEmitted += blob.size();
    };

    auto dataDeficit = [&]() -> bool {
        u64 total = text.size();
        if (total == 0)
            return false;
        return static_cast<double>(dataEmitted) <
               config.dataFraction * static_cast<double>(total);
    };

    for (int i = 0; i < n; ++i) {
        // Interleaved embedded data between functions.
        if (config.interleaveData) {
            while (dataDeficit() && text.size() > 0) {
                emitDataRegion(rng.range(
                    static_cast<u64>(config.minDataRegion),
                    static_cast<u64>(config.maxDataRegion)));
                if (rng.chance(0.5))
                    break;
            }
        }
        emitPadding(as, config, rng, truth);

        // Choose direct callees: forward neighbors, excluding
        // address-taken functions (those are pointer-only).
        FuncRequest request;
        request.entry = entries[i];
        for (int j = i + 1; j < std::min(n, i + 6); ++j) {
            if (!addressTaken[j])
                request.callees.push_back(entries[j]);
        }
        if (i > 2 && rng.chance(0.3) && !addressTaken[i - 2])
            request.callees.push_back(entries[i - 2]);
        request.funcPtrSlots = ptrSlots;
        request.sectionBase = kSynthTextBase;
        if (config.materializedCalls) {
            for (int j = 1; j < n; ++j) {
                if (addressTaken[j] && rng.chance(0.2))
                    request.regCallees.push_back(entries[j]);
            }
        }
        request.jumpTable = rng.chance(config.jumpTableFraction);
        request.embedJumpTable = config.embedJumpTables;
        if (request.jumpTable && config.tablesInRodata) {
            // Pre-allocate the table in .rodata (GCC layout).
            request.jumpTableCases = static_cast<int>(rng.range(3, 10));
            request.jumpTableVaddr =
                kSynthRodataBase + rodataCursor;
            rodataCursor +=
                static_cast<u64>(request.jumpTableCases) * 4;
        }

        Offset begin = as.here();
        FuncResult func = codegen.generate(request);
        functionStarts.push_back(func.start);
        truth.mark(begin, func.end, ByteClass::Code);
        for (const auto &[dBegin, dEnd] : func.dataRegions)
            truth.markData(dBegin, dEnd, DataOrigin::JumpTable);
        for (const auto &[dBegin, dEnd] : func.dataRegions)
            dataEmitted += dEnd - dBegin;
        result.stats.jumpTables += func.numJumpTables;
        for (auto &pending : func.pendingTables)
            pooledTables.push_back(std::move(pending));
        for (auto &pending : func.rodataTables)
            rodataTables.push_back(std::move(pending));
        ++result.stats.functions;
    }

    // Pooled region at the end: pending jump tables, the pointer pool,
    // and any remaining data budget.
    emitPadding(as, config, rng, truth);
    for (const auto &[table, cases] : pooledTables) {
        Offset begin = as.here();
        as.bind(table);
        for (Label c : cases)
            as.rawLabelDelta32(c, begin);
        truth.markData(begin, as.here(), DataOrigin::JumpTable);
        dataEmitted += as.here() - begin;
    }
    if (slots > 0) {
        Offset begin = as.here();
        for (int s = 0; s < slots; ++s) {
            as.bind(ptrSlots[static_cast<std::size_t>(s)]);
            // Point each slot at some function, preferring the
            // address-taken ones.
            int target = -1;
            for (int tries = 0; tries < 8 && target < 0; ++tries) {
                int cand = static_cast<int>(rng.below(n));
                if (addressTaken[cand])
                    target = cand;
            }
            if (target < 0)
                target = static_cast<int>(rng.below(n));
            as.rawLabelVaddr(entries[target], kSynthTextBase);
        }
        truth.markData(begin, as.here(), DataOrigin::PointerPool);
        dataEmitted += as.here() - begin;
    }
    while (dataDeficit()) {
        emitDataRegion(rng.range(static_cast<u64>(config.minDataRegion),
                                 static_cast<u64>(config.maxDataRegion)));
    }

    as.finalize();

    result.stats.instructions = as.insnStarts().size();
    result.stats.totalBytes = text.size();

    SectionFlags flags;
    flags.executable = true;
    result.image.addSection(
        Section(".text", kSynthTextBase, std::move(text), flags));
    result.image.addEntryPoint(kSynthTextBase +
                               as.labelOffset(entries[0]));

    // Materialize the .rodata section with the GCC-style tables
    // (entries are case-target vaddr minus table vaddr).
    if (rodataCursor > 0) {
        ByteVec rodata(rodataCursor, 0);
        for (const auto &[tableVa, cases] : rodataTables) {
            u64 off = tableVa - kSynthRodataBase;
            for (Label c : cases) {
                s64 targetVa = static_cast<s64>(
                    kSynthTextBase + as.labelOffset(c));
                writeLe32(rodata, off,
                          static_cast<u32>(static_cast<s32>(
                              targetVa - static_cast<s64>(tableVa))));
                off += 4;
            }
        }
        result.image.addSection(Section(".rodata", kSynthRodataBase,
                                        std::move(rodata),
                                        SectionFlags{}));
    }

    result.truth = truth.build(as.insnStarts());
    std::sort(functionStarts.begin(), functionStarts.end());
    result.truth.setFunctionStarts(std::move(functionStarts));
    result.stats.codeBytes = result.truth.bytesOf(ByteClass::Code);
    result.stats.dataBytes = result.truth.bytesOf(ByteClass::Data);
    result.stats.paddingBytes =
        result.truth.bytesOf(ByteClass::Padding);
    return result;
}

CorpusConfig
gccLikePreset(u64 seed)
{
    CorpusConfig config;
    config.seed = seed;
    config.name = "gcc-like";
    config.dataFraction = 0.05;
    config.interleaveData = false;
    config.embedJumpTables = false;
    config.tablesInRodata = true;
    config.jumpTableFraction = 0.2;
    config.addressTakenFraction = 0.08;
    config.materializedCalls = false;
    config.padKind = PadKind::Nop;
    config.dataMix[0] = 2.0; // strings
    config.dataMix[1] = 2.0; // consts
    config.dataMix[2] = 0.5; // blobs
    config.dataMix[3] = 1.0; // zeros
    config.dataMix[4] = 0.0; // code-like
    return config;
}

CorpusConfig
msvcLikePreset(u64 seed)
{
    CorpusConfig config;
    config.seed = seed;
    config.name = "msvc-like";
    config.dataFraction = 0.15;
    config.interleaveData = true;
    config.embedJumpTables = true;
    config.jumpTableFraction = 0.3;
    config.addressTakenFraction = 0.15;
    config.padKind = PadKind::Int3;
    config.codeStyle.emitEndbr = false;
    config.dataMix[5] = 1.5; // UTF-16 strings (Windows flavor)
    return config;
}

CorpusConfig
adversarialPreset(u64 seed)
{
    CorpusConfig config;
    config.seed = seed;
    config.name = "adversarial";
    config.dataFraction = 0.30;
    config.interleaveData = true;
    config.embedJumpTables = true;
    config.jumpTableFraction = 0.35;
    config.addressTakenFraction = 0.25;
    config.pointerSlots = 16;
    config.padKind = PadKind::Zero;
    config.dataMix[0] = 2.0;
    config.dataMix[1] = 1.5;
    config.dataMix[2] = 1.0;
    config.dataMix[3] = 0.5;
    config.dataMix[4] = 2.0; // code-like data present
    return config;
}

} // namespace accdis::synth
