#include "eval/realworld.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "baseline/baselines.hh"
#include "core/functions.hh"
#include "image/elf_reader.hh"
#include "image/loader.hh"
#include "support/error.hh"
#include "support/serialize.hh"

namespace accdis::eval
{

namespace
{

std::string
hex(u64 value)
{
    std::ostringstream out;
    out << "0x" << std::hex << value;
    return out.str();
}

/** Per-byte code flags flattened out of the interval map — one pass
 *  per tool instead of a map lookup per byte during triage. */
std::vector<u8>
flattenCode(const IntervalMap<ResultClass> &map, u64 size)
{
    std::vector<u8> code(size, 0);
    for (const auto &entry : map.entries()) {
        if (entry.label != ResultClass::Code)
            continue;
        Offset end = std::min<Offset>(entry.end, size);
        for (Offset b = entry.begin; b < end; ++b)
            code[b] = 1;
    }
    return code;
}

/** Known entry points of @p image falling inside @p sec, as
 *  section-relative offsets. */
std::vector<Offset>
sectionEntries(const BinaryImage &image, const Section &sec)
{
    std::vector<Offset> entries;
    for (Addr addr : image.entryPoints()) {
        if (sec.containsVaddr(addr))
            entries.push_back(sec.toOffset(addr));
    }
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()),
                  entries.end());
    return entries;
}

DivergenceBuckets
triageSection(const Classification &ours, ByteSpan bytes,
              const std::vector<Offset> &entries, Addr base,
              const std::vector<AuxRegion> &aux, x86::DecodeMode mode)
{
    LinearSweep sweep(mode);
    RecursiveTraversal recursive(mode);
    Classification sweepResult =
        sweep.analyzeSection(bytes, entries, base, aux);
    Classification recResult =
        recursive.analyzeSection(bytes, entries, base, aux);

    std::vector<u8> oursCode = flattenCode(ours.map, bytes.size());
    std::vector<u8> sweepCode =
        flattenCode(sweepResult.map, bytes.size());
    std::vector<u8> recCode = flattenCode(recResult.map, bytes.size());

    DivergenceBuckets buckets;
    for (std::size_t b = 0; b < bytes.size(); ++b) {
        if (sweepCode[b] != recCode[b])
            ++buckets.bothDiffer;
        else if (oursCode[b] == sweepCode[b])
            ++buckets.agreed;
        else if (oursCode[b])
            ++buckets.oursOnlyCode;
        else
            ++buckets.baselineOnlyCode;
    }
    return buckets;
}

} // namespace

const std::vector<std::string> &
realWorldOracles()
{
    static const std::vector<std::string> oracles = {
        kOracleOverlap,
        kOracleCfMidInsn,
        kOracleCfIntoData,
        kOracleJumpTable,
    };
    return oracles;
}

u64
RealWorldReport::violationCount() const
{
    u64 total = 0;
    for (const SectionReport &sec : sections)
        total += sec.violations.size();
    return total;
}

u64
RealWorldReport::violationCountFor(const std::string &oracle) const
{
    u64 total = 0;
    for (const SectionReport &sec : sections) {
        for (const Violation &v : sec.violations)
            total += v.oracle == oracle ? 1 : 0;
    }
    return total;
}

std::vector<Violation>
checkSelfConsistency(const Superset &superset,
                     const Classification &result, Addr sectionBase,
                     const std::vector<AuxRegion> &aux,
                     const std::string &sectionName)
{
    std::vector<Violation> violations;
    // Calibration gate: bytes committed by residual gap refinement
    // are the engine's lowest-confidence guesses, and flagging their
    // decodes measures the known softness of gap fill rather than a
    // contradiction among confidently-claimed facts. Restricting the
    // overlap and control-flow oracles to stronger commitments takes
    // the synthetic determinism corpus to zero violations while real
    // binaries keep thousands of strongly-committed starts in scope.
    auto residual = [&](Offset off) {
        auto prio = result.provenance.at(off);
        return prio.has_value() &&
               *prio >= static_cast<u8>(Priority::Residual);
    };
    auto report = [&](const char *oracle, Offset site, Offset target,
                      std::string detail) {
        Violation v;
        v.oracle = oracle;
        v.section = sectionName;
        v.site = site;
        v.target = target;
        v.detail = std::move(detail);
        violations.push_back(std::move(v));
    };

    // Oracle 1: committed instruction starts must decode and must not
    // overlap the next committed start.
    const std::vector<Offset> &starts = result.insnStarts;
    for (std::size_t i = 0; i < starts.size(); ++i) {
        Offset s = starts[i];
        if (!superset.validAt(s)) {
            report(kOracleOverlap, s, kNoAddr,
                   "committed start " + hex(s) +
                       " has no valid decode");
            continue;
        }
        Offset end = s + superset.node(s).length;
        if (i + 1 < starts.size() && end > starts[i + 1] &&
            !(residual(s) && residual(starts[i + 1]))) {
            report(kOracleOverlap, s, starts[i + 1],
                   "decode at " + hex(s) + " (len " +
                       std::to_string(superset.node(s).length) +
                       ") overlaps committed start " +
                       hex(starts[i + 1]));
        }
    }

    // Oracles 2+3: every direct call/jump from committed code must
    // land on a committed instruction start, not mid-instruction and
    // not in data-classified bytes. Out-of-section targets are not
    // checkable and escape via target() == kNoAddr.
    for (Offset s : starts) {
        if (residual(s))
            continue;
        Offset t = superset.target(s);
        if (t == kNoAddr)
            continue;
        auto cls = result.map.at(t);
        if (cls.has_value() && *cls == ResultClass::Data) {
            report(kOracleCfIntoData, s, t,
                   "direct flow " + hex(s) + " -> " + hex(t) +
                       " lands in data-classified bytes");
        } else if (!result.isInsnStart(t)) {
            report(kOracleCfMidInsn, s, t,
                   "direct flow " + hex(s) + " -> " + hex(t) +
                       " lands mid-instruction");
        }
    }

    // Oracle 4: fully-matched jump tables whose dispatch the engine
    // committed as code must have every case target on a committed
    // start — the table was the engine's own evidence for them.
    JumpTableConfig jtConfig;
    jtConfig.auxRegions = aux;
    jtConfig.sectionBase = sectionBase;
    jtConfig.mode = superset.mode();
    for (const JumpTable &table : findJumpTables(superset, jtConfig)) {
        if (!table.fullIdiom || !result.isInsnStart(table.dispatchOff))
            continue;
        for (Offset t : table.targets) {
            if (result.isInsnStart(t))
                continue;
            report(kOracleJumpTable, table.dispatchOff, t,
                   "jump-table case target " + hex(t) +
                       " (dispatch " + hex(table.dispatchOff) +
                       ") is not a committed start");
        }
    }

    return violations;
}

RealWorldReport
evaluateImage(const BinaryImage &image, const RealWorldOptions &options,
              ByteSpan twinElf)
{
    RealWorldReport report;
    report.name = image.name();
    report.loaded = true;
    report.mode = image.mode();

    EngineConfig config = options.engine;
    config.mode = image.mode();
    DisassemblyEngine engine(config);
    std::vector<AuxRegion> aux = auxRegionsOf(image);

    std::vector<ElfSymbol> twinSymbols;
    if (!twinElf.empty()) {
        twinSymbols = readElfFunctionSymbols(twinElf);
        report.twin.available = !twinSymbols.empty();
    }
    std::set<Addr> symbolVaddrs;
    std::set<Addr> recoveredVaddrs;

    for (const Section &sec : image.sections()) {
        if (!sec.flags().executable || sec.size() == 0)
            continue;
        if (options.maxSectionBytes != 0 &&
            sec.size() > options.maxSectionBytes) {
            report.skippedSections.push_back(sec.name());
            continue;
        }

        std::vector<Offset> entries = sectionEntries(image, sec);
        Superset superset(sec.bytes(), config.acceleratedHotPath,
                          nullptr, config.mode);
        Classification result =
            engine.analyzeSection(sec.bytes(), entries, sec.base(), aux);

        SectionReport secReport;
        secReport.name = sec.name();
        secReport.base = sec.base();
        secReport.bytes = sec.size();
        secReport.codeBytes = result.bytesOf(ResultClass::Code);
        secReport.insnStarts = result.insnStarts.size();
        secReport.violations = checkSelfConsistency(
            superset, result, sec.base(), aux, sec.name());
        if (options.triageBaselines) {
            secReport.divergence =
                triageSection(result, sec.bytes(), entries, sec.base(),
                              aux, config.mode);
        }
        report.sections.push_back(std::move(secReport));

        if (report.twin.available) {
            for (const ElfSymbol &sym : twinSymbols) {
                if (sec.containsVaddr(sym.value))
                    symbolVaddrs.insert(sym.value);
            }
            for (const FunctionInfo &fn :
                 recoverFunctions(superset, result, sec.base()))
                recoveredVaddrs.insert(sec.vaddr(fn.entry));
        }
    }

    if (report.twin.available) {
        report.twin.symbolCount = symbolVaddrs.size();
        report.twin.recoveredCount = recoveredVaddrs.size();
        for (Addr addr : recoveredVaddrs) {
            if (symbolVaddrs.count(addr))
                ++report.twin.starts.truePositives;
            else
                ++report.twin.starts.falsePositives;
        }
        for (Addr addr : symbolVaddrs) {
            if (!recoveredVaddrs.count(addr))
                ++report.twin.starts.falseNegatives;
        }
    }

    return report;
}

RealWorldReport
evaluateFile(const std::string &path, const RealWorldOptions &options,
             const std::string &twinPath)
{
    LoadOptions loadOptions;
    loadOptions.salvage = true;
    LoadResult loaded = loadBinaryFile(path, loadOptions);
    if (!loaded.ok()) {
        RealWorldReport report;
        report.name = path;
        report.loaded = false;
        report.loadError = loaded.report.summary();
        return report;
    }

    ByteVec twinBytes;
    if (!twinPath.empty()) {
        std::ifstream in(twinPath, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            std::string data = buf.str();
            twinBytes.assign(data.begin(), data.end());
        }
        // An unreadable twin degrades to twin.available == false
        // rather than failing the whole evaluation.
    }

    return evaluateImage(*loaded.image, options, twinBytes);
}

ByteVec
encodeReport(const RealWorldReport &report)
{
    Encoder enc;
    enc.varint(kSchemaVersion);
    enc.str(report.name);
    enc.pod<u8>(report.loaded ? 1 : 0);
    enc.str(report.loadError);
    enc.pod<u8>(static_cast<u8>(report.mode));
    enc.varint(report.sections.size());
    for (const SectionReport &sec : report.sections) {
        enc.str(sec.name);
        enc.pod<u64>(sec.base);
        enc.varint(sec.bytes);
        enc.varint(sec.codeBytes);
        enc.varint(sec.insnStarts);
        enc.varint(sec.violations.size());
        for (const Violation &v : sec.violations) {
            enc.str(v.oracle);
            enc.str(v.section);
            enc.pod<u64>(v.site);
            enc.pod<u64>(v.target);
            enc.str(v.detail);
        }
        enc.varint(sec.divergence.agreed);
        enc.varint(sec.divergence.oursOnlyCode);
        enc.varint(sec.divergence.baselineOnlyCode);
        enc.varint(sec.divergence.bothDiffer);
    }
    enc.varint(report.skippedSections.size());
    for (const std::string &name : report.skippedSections)
        enc.str(name);
    enc.pod<u8>(report.twin.available ? 1 : 0);
    enc.varint(report.twin.symbolCount);
    enc.varint(report.twin.recoveredCount);
    enc.varint(report.twin.starts.truePositives);
    enc.varint(report.twin.starts.falsePositives);
    enc.varint(report.twin.starts.falseNegatives);
    return enc.take();
}

RealWorldReport
decodeReport(ByteSpan bytes)
{
    Decoder dec(bytes);
    u64 version = dec.varint();
    if (version != kSchemaVersion)
        throw SerializeError(
            "realworld: schema version mismatch (got " +
            std::to_string(version) + ", want " +
            std::to_string(kSchemaVersion) + ")");
    RealWorldReport report;
    report.name = dec.str();
    report.loaded = dec.pod<u8>() != 0;
    report.loadError = dec.str();
    report.mode = static_cast<x86::DecodeMode>(dec.pod<u8>());
    u64 sectionCount = dec.varint();
    for (u64 i = 0; i < sectionCount; ++i) {
        SectionReport sec;
        sec.name = dec.str();
        sec.base = dec.pod<u64>();
        sec.bytes = dec.varint();
        sec.codeBytes = dec.varint();
        sec.insnStarts = dec.varint();
        u64 violationCount = dec.varint();
        for (u64 j = 0; j < violationCount; ++j) {
            Violation v;
            v.oracle = dec.str();
            v.section = dec.str();
            v.site = dec.pod<u64>();
            v.target = dec.pod<u64>();
            v.detail = dec.str();
            sec.violations.push_back(std::move(v));
        }
        sec.divergence.agreed = dec.varint();
        sec.divergence.oursOnlyCode = dec.varint();
        sec.divergence.baselineOnlyCode = dec.varint();
        sec.divergence.bothDiffer = dec.varint();
        report.sections.push_back(std::move(sec));
    }
    u64 skippedCount = dec.varint();
    for (u64 i = 0; i < skippedCount; ++i)
        report.skippedSections.push_back(dec.str());
    report.twin.available = dec.pod<u8>() != 0;
    report.twin.symbolCount = dec.varint();
    report.twin.recoveredCount = dec.varint();
    report.twin.starts.truePositives = dec.varint();
    report.twin.starts.falsePositives = dec.varint();
    report.twin.starts.falseNegatives = dec.varint();
    dec.expectEnd();
    return report;
}

std::vector<fuzz::Reproducer>
harvestSeeds(const BinaryImage &image, const RealWorldReport &report,
             const HarvestOptions &options)
{
    std::vector<fuzz::Reproducer> seeds;
    std::set<std::string> dedup;
    for (const SectionReport &secReport : report.sections) {
        const Section *sec = nullptr;
        for (const Section &candidate : image.sections()) {
            if (candidate.name() == secReport.name &&
                candidate.base() == secReport.base) {
                sec = &candidate;
                break;
            }
        }
        if (sec == nullptr)
            continue;
        ByteSpan bytes = sec->bytes();
        for (const Violation &v : secReport.violations) {
            if (seeds.size() >= options.maxSeeds)
                return seeds;
            std::string key =
                v.oracle + "|" + v.section + "|" + hex(v.site);
            if (!dedup.insert(key).second)
                continue;

            // The window must hold both the site and (when present)
            // the target, with slack for the decodes themselves.
            Offset lo = v.site;
            Offset hi = v.site;
            if (v.target != kNoAddr) {
                lo = std::min(lo, v.target);
                hi = std::max(hi, v.target);
            }
            hi = std::min<Offset>(hi + 16, bytes.size());

            for (std::size_t window = options.minWindow;
                 window <= options.maxWindow; window *= 4) {
                if (hi - lo > window)
                    continue;
                Offset mid = lo + (hi - lo) / 2;
                Offset begin =
                    mid > window / 2 ? mid - window / 2 : 0;
                if (begin > lo)
                    begin = lo;
                Offset end =
                    std::min<Offset>(begin + window, bytes.size());
                if (end < hi)
                    continue;

                fuzz::RunSpec spec;
                spec.mode = report.mode;
                spec.rawBase = sec->base() + begin;
                spec.rawBytes.assign(bytes.begin() + begin,
                                     bytes.begin() + end);

                bool confirmed = false;
                for (const Violation &replayed :
                     replaySeed(spec, options.engine)) {
                    if (replayed.oracle == v.oracle &&
                        replayed.site == v.site - begin) {
                        confirmed = true;
                        break;
                    }
                }
                if (confirmed) {
                    fuzz::Reproducer repro;
                    repro.spec = std::move(spec);
                    repro.expect = v.oracle;
                    seeds.push_back(std::move(repro));
                    break;
                }
            }
        }
    }
    return seeds;
}

std::vector<Violation>
replaySeed(const fuzz::RunSpec &spec, const EngineConfig &engine)
{
    if (!spec.raw())
        throw Error("realworld: replaySeed needs a raw spec");
    fuzz::Mutant mutant = fuzz::buildMutant(spec);
    RealWorldOptions options;
    options.engine = engine;
    options.triageBaselines = false;
    RealWorldReport report = evaluateImage(mutant.image, options);
    std::vector<Violation> violations;
    for (SectionReport &sec : report.sections) {
        for (Violation &v : sec.violations)
            violations.push_back(std::move(v));
    }
    return violations;
}

} // namespace accdis::eval
