#include "eval/metrics.hh"

#include <set>

namespace accdis
{

AccuracyMetrics
compareToTruth(const Classification &result,
               const synth::GroundTruth &truth)
{
    using synth::ByteClass;
    AccuracyMetrics metrics;

    std::set<Offset> predicted(result.insnStarts.begin(),
                               result.insnStarts.end());
    std::set<Offset> real;
    for (Offset off : truth.insnStarts()) {
        if (truth.classAt(off) != ByteClass::Padding)
            real.insert(off);
    }

    for (Offset off : predicted) {
        if (truth.classAt(off) == ByteClass::Padding)
            continue;
        if (real.count(off))
            ++metrics.truePositives;
        else
            ++metrics.falsePositives;
    }
    for (Offset off : real) {
        if (!predicted.count(off))
            ++metrics.falseNegatives;
    }

    // Byte-level comparison over non-padding bytes.
    for (const auto &interval : truth.intervals()) {
        if (interval.label == ByteClass::Padding)
            continue;
        ResultClass expected = interval.label == ByteClass::Code
                                   ? ResultClass::Code
                                   : ResultClass::Data;
        for (Offset b = interval.begin; b < interval.end; ++b) {
            ++metrics.byteTotal;
            auto got = result.map.at(b);
            if (got && *got == expected)
                ++metrics.byteCorrect;
        }
    }
    return metrics;
}

double
errorReductionFactor(const AccuracyMetrics &ours,
                     const AccuracyMetrics &baseline)
{
    double ourErrors = static_cast<double>(ours.errors());
    double baseErrors = static_cast<double>(baseline.errors());
    if (ourErrors == 0.0)
        return baseErrors == 0.0 ? 1.0 : 1e9;
    return baseErrors / ourErrors;
}

} // namespace accdis
