/**
 * @file
 * Accuracy metrics comparing a classification against ground truth.
 */

#ifndef ACCDIS_EVAL_METRICS_HH
#define ACCDIS_EVAL_METRICS_HH

#include "core/result.hh"
#include "synth/ground_truth.hh"

namespace accdis
{

/**
 * Instruction- and byte-level accuracy. Padding bytes are excluded
 * from every count: alignment filler is decoded as NOPs or skipped
 * depending on the tool, and neither answer is an error a user cares
 * about (this mirrors the established evaluation practice).
 */
struct AccuracyMetrics
{
    // Instruction level (offsets of instruction starts).
    u64 truePositives = 0;  ///< Correctly reported instruction starts.
    u64 falsePositives = 0; ///< Reported starts that are not real.
    u64 falseNegatives = 0; ///< Real starts that were missed.

    // Byte level (code/data classification of each byte).
    u64 byteCorrect = 0;
    u64 byteTotal = 0;

    /** Instruction-level precision in [0,1]; 1 when nothing reported. */
    double
    precision() const
    {
        u64 reported = truePositives + falsePositives;
        return reported == 0
                   ? 1.0
                   : static_cast<double>(truePositives) /
                         static_cast<double>(reported);
    }

    /** Instruction-level recall in [0,1]; 1 when nothing to find. */
    double
    recall() const
    {
        u64 real = truePositives + falseNegatives;
        return real == 0 ? 1.0
                         : static_cast<double>(truePositives) /
                               static_cast<double>(real);
    }

    /** Harmonic mean of precision and recall. */
    double
    f1() const
    {
        double p = precision(), r = recall();
        return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
    }

    /** Total instruction-level errors (the paper's headline count). */
    u64 errors() const { return falsePositives + falseNegatives; }

    /** Byte-level accuracy in [0,1]. */
    double
    byteAccuracy() const
    {
        return byteTotal == 0 ? 1.0
                              : static_cast<double>(byteCorrect) /
                                    static_cast<double>(byteTotal);
    }
};

/** Compare a classification against the synthesized ground truth. */
AccuracyMetrics compareToTruth(const Classification &result,
                               const synth::GroundTruth &truth);

/**
 * Error-reduction factor of @p ours relative to @p baseline
 * (baseline errors / our errors; infinity-safe).
 */
double errorReductionFactor(const AccuracyMetrics &ours,
                            const AccuracyMetrics &baseline);

} // namespace accdis

#endif // ACCDIS_EVAL_METRICS_HH
