/**
 * @file
 * Metadata-free accuracy evaluation on real binaries.
 *
 * Synthetic corpora come with byte-exact ground truth; a stripped
 * /usr/bin ELF comes with nothing. This subsystem scores the engine
 * on such binaries anyway, through three layers that need
 * progressively more input:
 *
 *  1. Self-consistency oracles (no ground truth at all): properties
 *     any *internally coherent* disassembly must satisfy —
 *     non-overlapping committed decodes, direct calls/jumps that
 *     land on decoded instruction starts rather than mid-instruction
 *     or in data-classified bytes, and jump-table case targets that
 *     resolve to decoded starts. A violation is not automatically an
 *     engine error (real code does jump into bytes another path
 *     decodes differently), but every one marks a place where the
 *     result contradicts itself, and their count is comparable
 *     across engine versions.
 *
 *  2. Cross-tool divergence triage (baselines as a foil): every
 *     executable byte is bucketed against the linear-sweep and
 *     recursive-traversal baselines into a stable taxonomy — agreed,
 *     ours-only-code (the engine alone claims code), baseline-only-
 *     code (the baselines alone claim code), both-differ (the
 *     baselines disagree with each other, so "the baseline answer"
 *     is undefined). Bucket byte counts quantify where the engine
 *     diverges from convention without declaring either side wrong.
 *
 *  3. Unstripped-twin scoring (symbol tables as ground truth): when
 *     the same binary is available with its .symtab intact, the
 *     STT_FUNC symbols give function-start ground truth, and the
 *     engine's recovered functions are scored with the standard
 *     precision/recall machinery.
 *
 * Confirmed self-consistency violations can be exported as raw-mode
 * fuzz reproducers (fuzz/reproducer.hh): the offending byte window
 * is carved out, re-checked standalone (a violation that does not
 * reproduce from its own window was an artifact of wider context and
 * is dropped), and written as a self-contained `.repro` the corpus
 * replay keeps honest forever.
 */

#ifndef ACCDIS_EVAL_REALWORLD_HH
#define ACCDIS_EVAL_REALWORLD_HH

#include <string>
#include <vector>

#include "core/engine.hh"
#include "eval/metrics.hh"
#include "fuzz/reproducer.hh"
#include "image/binary_image.hh"
#include "superset/superset.hh"

namespace accdis::eval
{

/** Stable self-consistency oracle identifiers (report keys, seed
 *  `expect` lines). The `rw-` prefix keeps them disjoint from the
 *  synth fuzz oracles. */
inline constexpr char kOracleOverlap[] = "rw-overlap";
inline constexpr char kOracleCfMidInsn[] = "rw-cf-mid-insn";
inline constexpr char kOracleCfIntoData[] = "rw-cf-into-data";
inline constexpr char kOracleJumpTable[] = "rw-jt-unanchored";

/** Every oracle identifier, in fixed report order. */
const std::vector<std::string> &realWorldOracles();

/** One self-consistency violation. */
struct Violation
{
    /** Which oracle fired (one of the kOracle* identifiers). */
    std::string oracle;
    /** Section the violation lives in. */
    std::string section;
    /** Section-relative offset of the offending instruction. */
    Offset site = 0;
    /** Section-relative target offset, or kNoAddr when the oracle
     *  has no target notion (e.g. overlap). */
    Offset target = kNoAddr;
    /** Human-readable description with offsets and classes. */
    std::string detail;

    bool
    operator==(const Violation &other) const
    {
        return oracle == other.oracle && section == other.section &&
               site == other.site && target == other.target &&
               detail == other.detail;
    }
};

/** Per-byte engine-vs-baseline divergence taxonomy. Every executable
 *  byte lands in exactly one bucket, so the four counts always sum
 *  to the section size. */
struct DivergenceBuckets
{
    /** Engine, linear sweep and recursive traversal all agree. */
    u64 agreed = 0;
    /** Baselines agree on data; the engine alone claims code. */
    u64 oursOnlyCode = 0;
    /** Baselines agree on code; the engine alone claims data. */
    u64 baselineOnlyCode = 0;
    /** The baselines disagree with each other (contested bytes). */
    u64 bothDiffer = 0;

    u64
    total() const
    {
        return agreed + oursOnlyCode + baselineOnlyCode + bothDiffer;
    }

    bool operator==(const DivergenceBuckets &) const = default;
};

/** Evaluation of one executable section. */
struct SectionReport
{
    std::string name;
    Addr base = 0;
    u64 bytes = 0;
    u64 codeBytes = 0;
    u64 insnStarts = 0;
    std::vector<Violation> violations;
    DivergenceBuckets divergence;

    bool operator==(const SectionReport &) const = default;
};

/** Function-start score against an unstripped twin's symbol table. */
struct TwinReport
{
    /** True when a twin was supplied and its symtab parsed. */
    bool available = false;
    /** STT_FUNC symbols falling inside evaluated sections. */
    u64 symbolCount = 0;
    /** Function entries the engine recovered in those sections. */
    u64 recoveredCount = 0;
    /** Start-level score; only the instruction-level fields (TP, FP,
     *  FN and the derived precision/recall) are populated. */
    AccuracyMetrics starts;

    bool
    operator==(const TwinReport &other) const
    {
        return available == other.available &&
               symbolCount == other.symbolCount &&
               recoveredCount == other.recoveredCount &&
               starts.truePositives == other.starts.truePositives &&
               starts.falsePositives == other.starts.falsePositives &&
               starts.falseNegatives == other.starts.falseNegatives;
    }
};

/** Full evaluation of one binary. */
struct RealWorldReport
{
    /** Binary name (file path as given). */
    std::string name;
    /** False when the image failed to load; loadError says why. */
    bool loaded = false;
    std::string loadError;
    x86::DecodeMode mode = x86::DecodeMode::X64;
    std::vector<SectionReport> sections;
    /** Executable sections skipped by the size cap (never silent). */
    std::vector<std::string> skippedSections;
    TwinReport twin;

    /** Total self-consistency violations across sections. */
    u64 violationCount() const;
    /** Violations of one oracle across sections. */
    u64 violationCountFor(const std::string &oracle) const;

    bool operator==(const RealWorldReport &) const = default;
};

/** Evaluation knobs. */
struct RealWorldOptions
{
    /** Engine configuration; mode is overridden per image. */
    EngineConfig engine;
    /** Run the baseline tools for the divergence taxonomy. */
    bool triageBaselines = true;
    /** Skip executable sections larger than this (0 = no cap); the
     *  skip is recorded in RealWorldReport::skippedSections. */
    u64 maxSectionBytes = 0;
};

/**
 * Self-consistency check of one classified section — the truth-free
 * oracle layer, exposed for hand-built fixtures in tests. @p aux
 * carries the image's read-only data regions for jump-table
 * discovery.
 *
 * Calibration: the overlap and control-flow oracles ignore sites the
 * engine committed at Priority::Residual (gap refinement) — those are
 * its lowest-confidence guesses, and contradictions among them
 * measure gap-fill softness, not internal inconsistency. This takes
 * the synthetic determinism corpus to zero violations.
 */
std::vector<Violation> checkSelfConsistency(
    const Superset &superset, const Classification &result,
    Addr sectionBase, const std::vector<AuxRegion> &aux,
    const std::string &sectionName);

/**
 * Evaluate every executable section of @p image. When @p twinElf is
 * non-empty it must be the bytes of an unstripped build of the same
 * binary (same link addresses); its STT_FUNC symbols become
 * function-start ground truth for the twin layer.
 */
RealWorldReport evaluateImage(const BinaryImage &image,
                              const RealWorldOptions &options = {},
                              ByteSpan twinElf = {});

/**
 * Load @p path (salvage mode, so partially damaged real-world files
 * still evaluate their intact sections) and evaluate it. A failed
 * load comes back as loaded=false with the first report issue in
 * loadError — never an exception. @p twinPath optionally names the
 * unstripped twin.
 */
RealWorldReport evaluateFile(const std::string &path,
                             const RealWorldOptions &options = {},
                             const std::string &twinPath = {});

/** Serialize a report through the versioned binary codec. */
ByteVec encodeReport(const RealWorldReport &report);

/** Decode an encodeReport buffer. @throws SerializeError. */
RealWorldReport decodeReport(ByteSpan bytes);

/** Seed-harvest knobs. */
struct HarvestOptions
{
    /** Engine used for the standalone confirmation replay. */
    EngineConfig engine;
    /** Smallest window tried around a violation site. */
    std::size_t minWindow = 256;
    /** Largest window tried before giving up on confirmation. */
    std::size_t maxWindow = 4096;
    /** Cap on exported seeds per report (dedup comes first). */
    std::size_t maxSeeds = 16;
};

/**
 * Export confirmed violations as raw-mode fuzz reproducers: for each
 * violation, carve the smallest window (minWindow, then 4x steps up
 * to maxWindow) around the site whose standalone re-analysis still
 * fires the same oracle. Violations that do not reproduce from any
 * window are dropped — they were artifacts of wider context, not
 * self-contained regressions.
 */
std::vector<fuzz::Reproducer> harvestSeeds(
    const BinaryImage &image, const RealWorldReport &report,
    const HarvestOptions &options = {});

/**
 * Replay a raw-mode spec (fuzz::RunSpec::raw()): analyze the window
 * and return its self-consistency violations. @throws Error when the
 * spec is not raw.
 */
std::vector<Violation> replaySeed(const fuzz::RunSpec &spec,
                                  const EngineConfig &engine = {});

} // namespace accdis::eval

#endif // ACCDIS_EVAL_REALWORLD_HH
