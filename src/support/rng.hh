/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256++) for the
 * synthetic corpus generator and the benchmarks. Determinism matters: a
 * seed fully determines a generated binary, so every experiment is
 * reproducible bit-for-bit.
 */

#ifndef ACCDIS_SUPPORT_RNG_HH
#define ACCDIS_SUPPORT_RNG_HH

#include <cstddef>
#include <vector>

#include "support/types.hh"

namespace accdis
{

/**
 * xoshiro256++ generator. Small, fast, and reproducible across
 * platforms, unlike std::mt19937 distributions.
 */
class Rng
{
  public:
    /** Seed with a 64-bit value expanded via splitmix64. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    u64 below(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    u64 range(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double unit();

    /** True with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Sample an index according to non-negative weights.
     * @pre weights is non-empty and sums to a positive value.
     */
    std::size_t weighted(const std::vector<double> &weights);

    /** Fill a buffer with uniform random bytes. */
    void fill(u8 *dst, std::size_t len);

  private:
    u64 state_[4];
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_RNG_HH
