#include "support/stats.hh"

#include <cmath>

namespace accdis
{

void
OnlineStats::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

void
ByteHistogram::add(ByteSpan bytes)
{
    for (u8 b : bytes)
        ++counts_[b];
    total_ += bytes.size();
}

double
ByteHistogram::entropy() const
{
    if (total_ == 0)
        return 0.0;
    double h = 0.0;
    const double total = static_cast<double>(total_);
    for (u64 c : counts_) {
        if (c == 0)
            continue;
        double p = static_cast<double>(c) / total;
        h -= p * std::log2(p);
    }
    return h;
}

double
byteEntropy(ByteSpan bytes)
{
    ByteHistogram hist;
    hist.add(bytes);
    return hist.entropy();
}

double
printableFraction(ByteSpan bytes)
{
    if (bytes.empty())
        return 0.0;
    u64 printable = 0;
    for (u8 b : bytes) {
        if ((b >= 0x20 && b < 0x7f) || b == '\t' || b == '\n' || b == '\r')
            ++printable;
    }
    return static_cast<double>(printable) /
           static_cast<double>(bytes.size());
}

} // namespace accdis
