#include "support/arena.hh"

namespace accdis
{

void *
Arena::allocSlow(std::size_t size, std::size_t align)
{
    // Oversized (or over-aligned) requests get a dedicated block:
    // threading them through the bump blocks would leave most of a
    // block dead until reset, and block bases only guarantee
    // max_align_t alignment.
    if (size > blockSize_ / 2 || align > alignof(std::max_align_t)) {
        Block b{std::make_unique<u8[]>(size + align), size + align};
        u8 *raw = b.data.get();
        auto addr = reinterpret_cast<std::uintptr_t>(raw);
        std::size_t adjust = (align - addr % align) % align;
        oversized_.push_back(std::move(b));
        noteUsed(size);
        return raw + adjust;
    }

    // Advance to the next retained block, appending a fresh one when
    // the arena has not grown this far before.
    if (block_ < blocks_.size())
        ++block_;
    if (block_ >= blocks_.size())
        blocks_.push_back(
            Block{std::make_unique<u8[]>(blockSize_), blockSize_});
    cursor_ = 0;

    std::size_t cur = (cursor_ + (align - 1)) & ~(align - 1);
    void *p = blocks_[block_].data.get() + cur;
    cursor_ = cur + size;
    noteUsed(size);
    return p;
}

} // namespace accdis
