/**
 * @file
 * Little-endian byte packing/unpacking helpers.
 */

#ifndef ACCDIS_SUPPORT_BYTES_HH
#define ACCDIS_SUPPORT_BYTES_HH

#include <cassert>

#include "support/types.hh"

namespace accdis
{

/** Read a little-endian 16-bit value. @pre span has >= 2 bytes at off. */
inline u16
readLe16(ByteSpan bytes, Offset off)
{
    assert(off + 2 <= bytes.size());
    return static_cast<u16>(bytes[off]) |
           static_cast<u16>(bytes[off + 1]) << 8;
}

/** Read a little-endian 32-bit value. @pre span has >= 4 bytes at off. */
inline u32
readLe32(ByteSpan bytes, Offset off)
{
    assert(off + 4 <= bytes.size());
    return static_cast<u32>(bytes[off]) |
           static_cast<u32>(bytes[off + 1]) << 8 |
           static_cast<u32>(bytes[off + 2]) << 16 |
           static_cast<u32>(bytes[off + 3]) << 24;
}

/** Read a little-endian 64-bit value. @pre span has >= 8 bytes at off. */
inline u64
readLe64(ByteSpan bytes, Offset off)
{
    assert(off + 8 <= bytes.size());
    return static_cast<u64>(readLe32(bytes, off)) |
           static_cast<u64>(readLe32(bytes, off + 4)) << 32;
}

/** Append a little-endian 16-bit value. */
inline void
appendLe16(ByteVec &out, u16 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
}

/** Append a little-endian 32-bit value. */
inline void
appendLe32(ByteVec &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

/** Append a little-endian 64-bit value. */
inline void
appendLe64(ByteVec &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

/** Overwrite a little-endian 16-bit value in place. */
inline void
writeLe16(ByteVec &out, Offset off, u16 v)
{
    assert(off + 2 <= out.size());
    out[off] = static_cast<u8>(v);
    out[off + 1] = static_cast<u8>(v >> 8);
}

/** Overwrite a little-endian 32-bit value in place. */
inline void
writeLe32(ByteVec &out, Offset off, u32 v)
{
    assert(off + 4 <= out.size());
    for (int i = 0; i < 4; ++i)
        out[off + i] = static_cast<u8>(v >> (8 * i));
}

/** Overwrite a little-endian 64-bit value in place. */
inline void
writeLe64(ByteVec &out, Offset off, u64 v)
{
    assert(off + 8 <= out.size());
    for (int i = 0; i < 8; ++i)
        out[off + i] = static_cast<u8>(v >> (8 * i));
}

} // namespace accdis

#endif // ACCDIS_SUPPORT_BYTES_HH
