#include "support/version.hh"

namespace accdis
{

const char *
gitDescribe()
{
#ifdef ACCDIS_GIT_DESCRIBE
    return ACCDIS_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

} // namespace accdis
