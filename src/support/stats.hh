/**
 * @file
 * Small statistics helpers: running moments, byte histograms, and
 * Shannon entropy of byte windows.
 */

#ifndef ACCDIS_SUPPORT_STATS_HH
#define ACCDIS_SUPPORT_STATS_HH

#include <array>
#include <cstddef>

#include "support/types.hh"

namespace accdis
{

/** Running mean / variance accumulator (Welford's algorithm). */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    u64 count() const { return count_; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return mean_; }

    /** Sample variance (0 with fewer than two observations). */
    double variance() const;

    /** Smallest observation seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation seen (-inf when empty). */
    double max() const { return max_; }

  private:
    u64 count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e308;
    double max_ = -1e308;
};

/** Histogram over the 256 byte values. */
class ByteHistogram
{
  public:
    /** Count every byte of @p bytes. */
    void add(ByteSpan bytes);

    /** Count a single byte value. */
    void add(u8 value) { ++counts_[value]; ++total_; }

    /** Total bytes counted. */
    u64 total() const { return total_; }

    /** Count for one byte value. */
    u64 count(u8 value) const { return counts_[value]; }

    /** Shannon entropy in bits per byte (0 when empty). */
    double entropy() const;

  private:
    std::array<u64, 256> counts_{};
    u64 total_ = 0;
};

/** Shannon entropy (bits/byte) of a byte window. */
double byteEntropy(ByteSpan bytes);

/** Fraction of bytes in @p bytes that are printable ASCII or \\t \\n \\r. */
double printableFraction(ByteSpan bytes);

} // namespace accdis

#endif // ACCDIS_SUPPORT_STATS_HH
