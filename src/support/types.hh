/**
 * @file
 * Fundamental integer and byte-span aliases used across accdis.
 */

#ifndef ACCDIS_SUPPORT_TYPES_HH
#define ACCDIS_SUPPORT_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace accdis
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Read-only view over raw bytes. */
using ByteSpan = std::span<const u8>;

/** Owning byte buffer. */
using ByteVec = std::vector<u8>;

/** Offset of a byte within a section or image. */
using Offset = u64;

/** Virtual address within a loaded image. */
using Addr = u64;

/** Sentinel for "no address / no offset". */
inline constexpr u64 kNoAddr = ~u64{0};

} // namespace accdis

#endif // ACCDIS_SUPPORT_TYPES_HH
