/**
 * @file
 * Observability counters for the accelerated hot path.
 *
 * A HotPathStats instance is an optional observer hung off
 * EngineConfig: the superset build counts how many nodes the prescan
 * fast path served, and the analysis context reports its arena's
 * high-water mark. The counters are atomics because one engine config
 * (and therefore one stats sink) is shared across BatchAnalyzer
 * workers; they never feed back into analysis results.
 */

#ifndef ACCDIS_SUPPORT_HOTPATH_HH
#define ACCDIS_SUPPORT_HOTPATH_HH

#include <atomic>

#include "support/types.hh"

namespace accdis
{

struct HotPathStats
{
    /** Superset nodes filled from the prescan tables. */
    std::atomic<u64> fastPathNodes{0};
    /** Total superset nodes decoded (fast path + full decoder). */
    std::atomic<u64> totalNodes{0};
    /** High-water mark of per-context arena scratch, in bytes. */
    std::atomic<u64> peakScratchBytes{0};

    /** Raise peakScratchBytes to at least @p bytes. */
    void
    notePeakScratch(u64 bytes)
    {
        u64 cur = peakScratchBytes.load(std::memory_order_relaxed);
        while (cur < bytes &&
               !peakScratchBytes.compare_exchange_weak(
                   cur, bytes, std::memory_order_relaxed))
            ;
    }

    /** fastPathNodes / totalNodes, or 0 when nothing was decoded. */
    double
    fastPathFraction() const
    {
        u64 total = totalNodes.load(std::memory_order_relaxed);
        if (total == 0)
            return 0.0;
        return static_cast<double>(
                   fastPathNodes.load(std::memory_order_relaxed)) /
               static_cast<double>(total);
    }
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_HOTPATH_HH
