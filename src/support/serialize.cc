#include "support/serialize.hh"

#include <cstdio>

namespace accdis
{

std::string
hexDigest(u64 digest)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

} // namespace accdis
