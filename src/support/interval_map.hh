/**
 * @file
 * Half-open interval containers keyed by byte offset. Used for ground
 * truth maps, classifier output, and data-region bookkeeping.
 */

#ifndef ACCDIS_SUPPORT_INTERVAL_MAP_HH
#define ACCDIS_SUPPORT_INTERVAL_MAP_HH

#include <cassert>
#include <map>
#include <optional>
#include <vector>

#include "support/types.hh"

namespace accdis
{

/**
 * A map from disjoint half-open intervals [begin, end) to labels.
 * Adjacent intervals with equal labels are coalesced. Insertion
 * overwrites any previously stored labels in the inserted range
 * (last-writer-wins), which is the natural semantics for layered
 * classification passes.
 */
template <typename Label>
class IntervalMap
{
  public:
    /** One stored interval. */
    struct Entry
    {
        Offset begin;
        Offset end;
        Label label;
    };

    /** Remove all intervals. */
    void clear() { map_.clear(); }

    /** True when no interval is stored. */
    bool empty() const { return map_.empty(); }

    /** Number of stored (coalesced) intervals. */
    std::size_t size() const { return map_.size(); }

    /**
     * Assign @p label to [begin, end), splitting or overwriting any
     * existing overlapping intervals. Empty ranges are ignored.
     */
    void
    assign(Offset begin, Offset end, const Label &label)
    {
        if (begin >= end)
            return;
        // Append fast path: classification folds emit their runs in
        // ascending disjoint order, so the common insert lands past
        // every stored interval — coalesce or emplace at the tail in
        // O(1) instead of paying the general split/erase search.
        if (map_.empty() ||
            std::prev(map_.end())->second.end <= begin) {
            if (!map_.empty()) {
                auto last = std::prev(map_.end());
                if (last->second.end == begin &&
                    last->second.label == label) {
                    last->second.end = end;
                    return;
                }
            }
            map_.emplace_hint(map_.end(), begin, Node{end, label});
            return;
        }
        // Find first interval that could overlap, possibly splitting it.
        auto it = map_.lower_bound(begin);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > begin) {
                // prev overlaps the front of the new range; split it.
                Node tail = prev->second;
                prev->second.end = begin;
                if (tail.end > end)
                    map_.emplace(end, Node{tail.end, tail.label});
                it = map_.lower_bound(begin);
            }
        }
        // Remove intervals fully shadowed by the new range; split the
        // last one if it extends past end.
        while (it != map_.end() && it->first < end) {
            if (it->second.end > end) {
                Node tail = it->second;
                map_.emplace(end, Node{tail.end, tail.label});
                it = map_.erase(it);
                break;
            }
            it = map_.erase(it);
        }
        map_.emplace(begin, Node{end, label});
        coalesceAround(begin, end);
    }

    /** Label covering @p off, if any. */
    std::optional<Label>
    at(Offset off) const
    {
        auto it = map_.upper_bound(off);
        if (it == map_.begin())
            return std::nullopt;
        --it;
        if (off < it->second.end)
            return it->second.label;
        return std::nullopt;
    }

    /** True when [begin, end) is fully covered by a single label value. */
    bool
    covered(Offset begin, Offset end, const Label &label) const
    {
        Offset cursor = begin;
        while (cursor < end) {
            auto it = map_.upper_bound(cursor);
            if (it == map_.begin())
                return false;
            --it;
            if (cursor >= it->second.end || !(it->second.label == label))
                return false;
            cursor = it->second.end;
        }
        return true;
    }

    /** Materialize all intervals in ascending order. */
    std::vector<Entry>
    entries() const
    {
        std::vector<Entry> out;
        out.reserve(map_.size());
        for (const auto &[begin, node] : map_)
            out.push_back({begin, node.end, node.label});
        return out;
    }

    /** Total number of bytes labeled @p label. */
    u64
    totalBytes(const Label &label) const
    {
        u64 total = 0;
        for (const auto &[begin, node] : map_) {
            if (node.label == label)
                total += node.end - begin;
        }
        return total;
    }

    /** Structural equality (same intervals, same labels). */
    bool
    operator==(const IntervalMap &other) const
    {
        return map_ == other.map_;
    }

  private:
    struct Node
    {
        Offset end;
        Label label;

        bool
        operator==(const Node &other) const
        {
            return end == other.end && label == other.label;
        }
    };

    void
    coalesceAround(Offset begin, Offset end)
    {
        auto it = map_.find(begin);
        assert(it != map_.end());
        // Merge with predecessor.
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end == begin &&
                prev->second.label == it->second.label) {
                prev->second.end = it->second.end;
                map_.erase(it);
                it = prev;
            }
        }
        // Merge with successor.
        auto next = map_.find(end);
        if (next != map_.end() && it->second.end == next->first &&
            it->second.label == next->second.label) {
            it->second.end = next->second.end;
            map_.erase(next);
        }
    }

    std::map<Offset, Node> map_;
};

/**
 * A set of disjoint half-open intervals with union semantics
 * (insertion merges with any overlapping or adjacent intervals).
 */
class IntervalSet
{
  public:
    /** One stored interval. */
    struct Entry
    {
        Offset begin;
        Offset end;
    };

    /** Remove all intervals. */
    void clear() { map_.clear(); }

    /** True when no interval is stored. */
    bool empty() const { return map_.empty(); }

    /** Number of stored (merged) intervals. */
    std::size_t size() const { return map_.size(); }

    /** Insert [begin, end), merging overlaps and adjacency. */
    void
    insert(Offset begin, Offset end)
    {
        if (begin >= end)
            return;
        auto it = map_.upper_bound(begin);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= begin) {
                begin = prev->first;
                end = std::max(end, prev->second);
                map_.erase(prev);
            }
        }
        it = map_.lower_bound(begin);
        while (it != map_.end() && it->first <= end) {
            end = std::max(end, it->second);
            it = map_.erase(it);
        }
        map_.emplace(begin, end);
    }

    /** True when @p off is inside some interval. */
    bool
    contains(Offset off) const
    {
        auto it = map_.upper_bound(off);
        if (it == map_.begin())
            return false;
        --it;
        return off < it->second;
    }

    /** True when [begin, end) intersects any stored interval. */
    bool
    intersects(Offset begin, Offset end) const
    {
        if (begin >= end)
            return false;
        auto it = map_.upper_bound(begin);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second > begin)
                return true;
        }
        return it != map_.end() && it->first < end;
    }

    /** Sum of interval lengths. */
    u64
    totalBytes() const
    {
        u64 total = 0;
        for (const auto &[begin, end] : map_)
            total += end - begin;
        return total;
    }

    /** Materialize all intervals in ascending order. */
    std::vector<Entry>
    entries() const
    {
        std::vector<Entry> out;
        out.reserve(map_.size());
        for (const auto &[begin, end] : map_)
            out.push_back({begin, end});
        return out;
    }

  private:
    std::map<Offset, Offset> map_;
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_INTERVAL_MAP_HH
