/**
 * @file
 * Exception type raised at accdis API boundaries.
 */

#ifndef ACCDIS_SUPPORT_ERROR_HH
#define ACCDIS_SUPPORT_ERROR_HH

#include <stdexcept>
#include <string>

namespace accdis
{

/**
 * Error raised when a library entry point is handed invalid input
 * (malformed image, bad configuration). Internal invariants use
 * assertions instead; an Error always indicates a caller problem.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_ERROR_HH
