#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace accdis
{

namespace
{
LogLevel globalLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logDebug(const std::string &msg)
{
    if (globalLevel <= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (globalLevel <= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (globalLevel <= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace accdis
