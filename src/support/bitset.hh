/**
 * @file
 * A flat bit vector with direct word access. std::vector<bool> hides
 * its words, which forces bit-at-a-time scans; the classification
 * fold wants to walk set bits with ctz over whole 64-bit words.
 */

#ifndef ACCDIS_SUPPORT_BITSET_HH
#define ACCDIS_SUPPORT_BITSET_HH

#include <vector>

#include "support/types.hh"

namespace accdis
{

/** Fixed-size bit vector backed by u64 words. */
class Bitset
{
  public:
    Bitset() = default;

    /** Resize to @p n bits, all set to @p value. */
    void
    assign(std::size_t n, bool value)
    {
        size_ = n;
        words_.assign((n + 63) / 64, value ? ~u64{0} : u64{0});
        // Keep bits past size() clear so word scans need no tail mask.
        if (value && (n & 63) != 0)
            words_.back() = (u64{1} << (n & 63)) - 1;
    }

    bool
    operator[](std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void set(std::size_t i) { words_[i >> 6] |= u64{1} << (i & 63); }

    void
    clear(std::size_t i)
    {
        words_[i >> 6] &= ~(u64{1} << (i & 63));
    }

    /** Number of bits. */
    std::size_t size() const { return size_; }

    /** Backing words, low bit = lowest index; tail bits are clear. */
    const std::vector<u64> &words() const { return words_; }

  private:
    std::size_t size_ = 0;
    std::vector<u64> words_;
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_BITSET_HH
