/**
 * @file
 * Bump/arena allocator for per-pass scratch memory.
 *
 * The hot analysis passes (flow propagation, gap refinement, pattern
 * scanning) used to allocate short-lived vectors and sets on the
 * general heap once per work item. An Arena replaces that with pointer
 * bumps into large retained blocks: allocation is a cursor increment,
 * and reset() recycles every block for the next pass without returning
 * memory to the OS. Arenas are single-owner objects — one per
 * AnalysisContext — and are not thread-safe by design.
 */

#ifndef ACCDIS_SUPPORT_ARENA_HH
#define ACCDIS_SUPPORT_ARENA_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/types.hh"

namespace accdis
{

/**
 * Region allocator with bump-pointer blocks, O(1) reset-and-reuse and
 * a dedicated-block fallback for oversized requests.
 *
 * Lifetime contract: memory returned by alloc()/allocArray() stays
 * valid until the next reset() (or destruction). Only trivially
 * destructible types may be placed in an arena — reset() never runs
 * destructors.
 */
class Arena
{
  public:
    /** Default size of a normal block. */
    static constexpr std::size_t kBlockSize = std::size_t{256} << 10;

    explicit Arena(std::size_t blockSize = kBlockSize)
        : blockSize_(blockSize)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p size bytes aligned to @p align (a power of two).
     * Requests larger than half a block get their own dedicated block
     * so they never poison the bump blocks' reuse.
     */
    void *
    alloc(std::size_t size, std::size_t align = alignof(std::max_align_t))
    {
        std::size_t cur = (cursor_ + (align - 1)) & ~(align - 1);
        if (align > alignof(std::max_align_t) ||
            block_ >= blocks_.size() || cur + size > blocks_[block_].size)
            return allocSlow(size, align);
        void *p = blocks_[block_].data.get() + cur;
        cursor_ = cur + size;
        noteUsed(size);
        return p;
    }

    /**
     * Allocate an uninitialized array of @p count trivially
     * destructible @p T. Callers initialize the elements themselves.
     */
    template <typename T>
    T *
    allocArray(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        return static_cast<T *>(alloc(count * sizeof(T), alignof(T)));
    }

    /**
     * Rewind to empty, retaining every normal block for reuse and
     * releasing dedicated oversized blocks back to the heap.
     */
    void
    reset()
    {
        block_ = 0;
        cursor_ = 0;
        used_ = 0;
        oversized_.clear();
    }

    /** Live bytes handed out since the last reset (excludes padding). */
    std::size_t usedBytes() const { return used_; }

    /** High-water mark of usedBytes() over the arena's lifetime. */
    std::size_t peakBytes() const { return peak_; }

    /** Total bytes currently reserved from the heap. */
    std::size_t
    reservedBytes() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        for (const Block &b : oversized_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<u8[]> data;
        std::size_t size = 0;
    };

    void *allocSlow(std::size_t size, std::size_t align);

    void
    noteUsed(std::size_t size)
    {
        used_ += size;
        if (used_ > peak_)
            peak_ = used_;
    }

    std::size_t blockSize_;
    std::vector<Block> blocks_;
    std::vector<Block> oversized_;
    std::size_t block_ = 0;  ///< Index of the active bump block.
    std::size_t cursor_ = 0; ///< Bump offset within the active block.
    std::size_t used_ = 0;
    std::size_t peak_ = 0;
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_ARENA_HH
