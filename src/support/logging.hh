/**
 * @file
 * Minimal leveled logging in the gem5 spirit: inform/warn for user-facing
 * status, panic for broken internal invariants.
 */

#ifndef ACCDIS_SUPPORT_LOGGING_HH
#define ACCDIS_SUPPORT_LOGGING_HH

#include <string>

namespace accdis
{

/** Severity of a log message. */
enum class LogLevel
{
    Debug,
    Inform,
    Warn,
    Quiet,
};

/** Set the global minimum level that is actually printed. */
void setLogLevel(LogLevel level);

/** Current global minimum printed level. */
LogLevel logLevel();

/** Print a debug-level message to stderr. */
void logDebug(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Report a broken internal invariant and abort. */
[[noreturn]] void panic(const std::string &msg);

} // namespace accdis

#endif // ACCDIS_SUPPORT_LOGGING_HH
