#include "support/rng.hh"

#include <cassert>

namespace accdis
{

namespace
{

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 x = seed;
    for (auto &s : state_)
        s = splitmix64(x);
}

u64
Rng::next()
{
    const u64 result = rotl(state_[0] + state_[3], 23) + state_[0];
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

u64
Rng::below(u64 bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~bound + 1) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Rng::range(u64 lo, u64 hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::unit()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return unit() < p;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += w;
    assert(total > 0.0);
    double pick = unit() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

void
Rng::fill(u8 *dst, std::size_t len)
{
    std::size_t i = 0;
    while (i + 8 <= len) {
        u64 v = next();
        for (int b = 0; b < 8; ++b)
            dst[i++] = static_cast<u8>(v >> (8 * b));
    }
    if (i < len) {
        u64 v = next();
        while (i < len) {
            dst[i++] = static_cast<u8>(v);
            v >>= 8;
        }
    }
}

} // namespace accdis
