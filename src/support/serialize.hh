/**
 * @file
 * Versioned binary codec for analysis artifacts plus a stable 64-bit
 * content hash.
 *
 * The codec is deliberately small: little-endian PODs, LEB128-style
 * varints, length-prefixed strings/byte blobs, POD vectors and
 * IntervalMaps. Every Decoder read is bounds-checked and throws
 * SerializeError on truncation or malformed input — the cache layer
 * catches it and falls back to cold analysis, so a corrupted entry
 * can never crash the engine or change results.
 *
 * The content hash (FNV-1a over bytes with a splitmix64 finalizer) is
 * the identity primitive of the result cache: section payloads,
 * engine configurations and the pass registry all reduce to 64-bit
 * fingerprints through Hasher. The hash value for a given byte stream
 * is part of the on-disk format — changing it must bump
 * kSchemaVersion.
 */

#ifndef ACCDIS_SUPPORT_SERIALIZE_HH
#define ACCDIS_SUPPORT_SERIALIZE_HH

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "support/error.hh"
#include "support/interval_map.hh"
#include "support/types.hh"

namespace accdis
{

/**
 * On-disk schema version shared by every serialized artifact and
 * cache entry. Bump on ANY change to the codec, the artifact layouts,
 * the content hash, or the meaning of existing fields; a version
 * mismatch invalidates every cache entry cleanly.
 *
 * v3: superset and explain artifacts carry the decode mode they were
 * produced under, and decoding refuses a mode-mismatched payload.
 */
inline constexpr u32 kSchemaVersion = 3;

/** Thrown on truncated or malformed serialized input. */
class SerializeError : public Error
{
  public:
    using Error::Error;
};

/**
 * Streaming 64-bit content hash: FNV-1a accumulation with a
 * splitmix64 avalanche finalizer. Stable across platforms and
 * processes (byte-order independent inputs are the caller's job:
 * feed little-endian PODs via add()).
 */
class Hasher
{
  public:
    explicit Hasher(u64 seed = 0)
    {
        if (seed != 0)
            add(seed);
    }

    /** Absorb @p size raw bytes. */
    Hasher &
    update(const void *data, std::size_t size)
    {
        const u8 *bytes = static_cast<const u8 *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state_ ^= bytes[i];
            state_ *= kFnvPrime;
        }
        return *this;
    }

    /** Absorb one trivially copyable value (memory representation). */
    template <typename T>
    Hasher &
    add(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "hash inputs must be trivially copyable");
        return update(&value, sizeof(value));
    }

    /** Absorb a length-prefixed string (self-delimiting). */
    Hasher &
    add(const std::string &value)
    {
        add(static_cast<u64>(value.size()));
        return update(value.data(), value.size());
    }

    /** Absorb a length-prefixed byte span. */
    Hasher &
    add(ByteSpan bytes)
    {
        add(static_cast<u64>(bytes.size()));
        return update(bytes.data(), bytes.size());
    }

    /** The avalanched digest of everything absorbed so far. */
    u64
    digest() const
    {
        // splitmix64 finalizer: FNV-1a alone mixes low bits poorly.
        u64 h = state_;
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
        h *= 0x94d049bb133111ebull;
        h ^= h >> 31;
        return h;
    }

  private:
    static constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
    static constexpr u64 kFnvPrime = 0x100000001b3ull;

    u64 state_ = kFnvOffset;
};

/** One-shot content hash of a byte span. */
inline u64
contentHash64(ByteSpan bytes, u64 seed = 0)
{
    return Hasher(seed).update(bytes.data(), bytes.size()).digest();
}

/** Fixed-width lowercase hex rendering of a 64-bit digest. */
std::string hexDigest(u64 digest);

/** Append-only binary encoder over an owned byte buffer. */
class Encoder
{
  public:
    /** Write one trivially copyable value verbatim (little-endian
     *  hosts only, which accdis already assumes everywhere). */
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "pod() needs a trivially copyable type");
        const auto *bytes = reinterpret_cast<const u8 *>(&value);
        out_.insert(out_.end(), bytes, bytes + sizeof(value));
    }

    /** LEB128 unsigned varint (1 byte for values < 128). */
    void
    varint(u64 value)
    {
        while (value >= 0x80) {
            out_.push_back(static_cast<u8>(value) | 0x80);
            value >>= 7;
        }
        out_.push_back(static_cast<u8>(value));
    }

    /** Length-prefixed raw bytes. */
    void
    bytes(ByteSpan span)
    {
        varint(span.size());
        out_.insert(out_.end(), span.begin(), span.end());
    }

    /** Length-prefixed string. */
    void
    str(const std::string &value)
    {
        varint(value.size());
        out_.insert(out_.end(), value.begin(), value.end());
    }

    /** Length-prefixed vector of trivially copyable elements. */
    template <typename T>
    void
    podVec(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "podVec() needs trivially copyable elements");
        varint(values.size());
        if (!values.empty()) {
            const auto *raw =
                reinterpret_cast<const u8 *>(values.data());
            out_.insert(out_.end(), raw,
                        raw + values.size() * sizeof(T));
        }
    }

    /** Interval map with trivially copyable labels: entry count then
     *  (begin, length) varint pairs plus the POD label. */
    template <typename Label>
    void
    intervalMap(const IntervalMap<Label> &map)
    {
        auto entries = map.entries();
        varint(entries.size());
        for (const auto &entry : entries) {
            varint(entry.begin);
            varint(entry.end - entry.begin);
            pod(entry.label);
        }
    }

    /** The encoded buffer so far. */
    const ByteVec &buffer() const { return out_; }

    /** Move the encoded buffer out. */
    ByteVec take() { return std::move(out_); }

  private:
    ByteVec out_;
};

/**
 * Bounds-checked reader over a borrowed byte span. Every accessor
 * throws SerializeError instead of reading out of range, so decoding
 * attacker-or-bitrot-controlled bytes is safe by construction.
 */
class Decoder
{
  public:
    explicit Decoder(ByteSpan in) : in_(in) {}

    template <typename T>
    T
    pod()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "pod() needs a trivially copyable type");
        need(sizeof(T));
        T value;
        std::memcpy(&value, in_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    u64
    varint()
    {
        u64 value = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            need(1);
            u8 byte = in_[pos_++];
            if (shift == 63 && (byte & 0x7e) != 0)
                throw SerializeError("serialize: varint overflow");
            value |= static_cast<u64>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return value;
        }
        throw SerializeError("serialize: varint too long");
    }

    ByteVec
    bytes()
    {
        u64 size = varint();
        need(size);
        ByteVec out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    in_.begin() +
                        static_cast<std::ptrdiff_t>(pos_ + size));
        pos_ += size;
        return out;
    }

    std::string
    str()
    {
        u64 size = varint();
        need(size);
        std::string out(
            reinterpret_cast<const char *>(in_.data() + pos_),
            static_cast<std::size_t>(size));
        pos_ += size;
        return out;
    }

    template <typename T>
    std::vector<T>
    podVec()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "podVec() needs trivially copyable elements");
        u64 count = varint();
        // Guard the multiplication below before trusting the count.
        if (count > (in_.size() - pos_) / sizeof(T))
            throw SerializeError("serialize: vector count too large");
        need(count * sizeof(T));
        std::vector<T> values(static_cast<std::size_t>(count));
        if (count > 0) {
            std::memcpy(values.data(), in_.data() + pos_,
                        static_cast<std::size_t>(count) * sizeof(T));
            pos_ += count * sizeof(T);
        }
        return values;
    }

    template <typename Label>
    IntervalMap<Label>
    intervalMap()
    {
        u64 count = varint();
        IntervalMap<Label> map;
        for (u64 i = 0; i < count; ++i) {
            Offset begin = varint();
            Offset length = varint();
            Label label = pod<Label>();
            if (length == 0 || begin + length < begin)
                throw SerializeError(
                    "serialize: malformed interval entry");
            map.assign(begin, begin + length, label);
        }
        return map;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return in_.size() - pos_; }

    /** True when every input byte has been consumed. */
    bool atEnd() const { return pos_ == in_.size(); }

    /** Throw unless the whole input was consumed (trailing garbage
     *  is corruption, not slack). */
    void
    expectEnd() const
    {
        if (!atEnd())
            throw SerializeError("serialize: trailing bytes");
    }

  private:
    void
    need(u64 size) const
    {
        if (size > in_.size() - pos_)
            throw SerializeError("serialize: truncated input");
    }

    ByteSpan in_;
    std::size_t pos_ = 0;
};

} // namespace accdis

#endif // ACCDIS_SUPPORT_SERIALIZE_HH
