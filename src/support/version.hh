/**
 * @file
 * Build identity: the git describe string baked in at configure time.
 * Embedded (informationally) in every cache entry header and printed
 * by `accdis_cli --version`; the cache key itself uses kSchemaVersion
 * and the pass-registry fingerprint, not this string, so rebuilding
 * the same schema from a different commit keeps warm entries valid.
 */

#ifndef ACCDIS_SUPPORT_VERSION_HH
#define ACCDIS_SUPPORT_VERSION_HH

namespace accdis
{

/** `git describe --always --dirty` of the build, or "unknown". */
const char *gitDescribe();

} // namespace accdis

#endif // ACCDIS_SUPPORT_VERSION_HH
