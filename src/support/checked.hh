/**
 * @file
 * Overflow-proof unsigned arithmetic for untrusted-input parsing.
 *
 * Every offset/size computation over attacker-controlled header
 * fields must go through these helpers: the naive `off + size >
 * limit` bounds check silently wraps for `off` near UINT64_MAX and
 * then admits an out-of-range access. The subtraction-form
 * `fitsRange()` and the explicit checked add/mul below cannot wrap,
 * whatever the inputs.
 */

#ifndef ACCDIS_SUPPORT_CHECKED_HH
#define ACCDIS_SUPPORT_CHECKED_HH

#include <optional>

#include "support/types.hh"

namespace accdis
{

/** a + b, or nullopt when the sum would wrap past UINT64_MAX. */
inline std::optional<u64>
checkedAdd(u64 a, u64 b)
{
    if (a > ~u64{0} - b)
        return std::nullopt;
    return a + b;
}

/** a * b, or nullopt when the product would wrap past UINT64_MAX. */
inline std::optional<u64>
checkedMul(u64 a, u64 b)
{
    if (b != 0 && a > ~u64{0} / b)
        return std::nullopt;
    return a * b;
}

/**
 * True when the half-open range [off, off + size) lies inside
 * [0, limit). Subtraction form: never computes `off + size`, so it is
 * immune to wraparound for any input values.
 */
inline bool
fitsRange(u64 off, u64 size, u64 limit)
{
    return off <= limit && size <= limit - off;
}

/**
 * Size of an @p count-entry table of @p entsize-byte records, or
 * nullopt when the product would wrap (a table that cannot possibly
 * fit in any file).
 */
inline std::optional<u64>
tableBytes(u64 count, u64 entsize)
{
    return checkedMul(count, entsize);
}

} // namespace accdis

#endif // ACCDIS_SUPPORT_CHECKED_HH
