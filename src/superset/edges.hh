/**
 * @file
 * SoA successor storage over the superset graph.
 *
 * The flow fixpoint used to chase successors through SupersetNode
 * accessors on every sweep, re-deriving fallthrough/target offsets
 * from packed node fields up to 64 times per offset. SupersetEdges
 * flattens the graph once into contiguous u32 arrays — per-offset
 * fallthrough and direct-target successors — so propagation becomes
 * linear scans over flat memory. Accelerated superset builds derive
 * the arrays during the decode fill (the facets are already in
 * registers there) and this class merely aliases them; otherwise the
 * arrays are arena-allocated and die with the Arena.
 */

#ifndef ACCDIS_SUPERSET_EDGES_HH
#define ACCDIS_SUPERSET_EDGES_HH

#include "superset/superset.hh"
#include "support/arena.hh"

namespace accdis
{

/**
 * Flat successor arrays over one Superset.
 *
 * An edge is *required* when execution from the source must be able
 * to continue through it for the source to be code: the fallthrough
 * successor of any falling-through node, and the in-section direct
 * target of any direct branch/call. Both successors of a conditional
 * are required — real code does not conditionally branch into
 * garbage — so the arrays contain exactly the edges the mustFault
 * propagation needs.
 */
class SupersetEdges
{
  public:
    /** The node has no successor of this kind. */
    static constexpr u32 kNone = 0xffffffff;
    /** The successor of this kind leaves the section. */
    static constexpr u32 kEscape = 0xfffffffe;
    /** Fallthrough slot only: no instruction decodes here. */
    static constexpr u32 kInvalid = 0xfffffffd;
    /** Target slot only: escaping direct call (never fatal). */
    static constexpr u32 kEscapeCall = 0xfffffffc;

    /** Build the arrays for @p superset; memory comes from @p arena
     *  and must not outlive it. */
    SupersetEdges(const Superset &superset, Arena &arena);

    std::size_t size() const { return n_; }

    /** Fallthrough successor: offset, kEscape (runs off the section)
     *  or kNone (the node is invalid or does not fall through). */
    u32 fallthrough(Offset off) const { return ft_[off]; }

    /** Direct-target successor: offset, kEscape or kNone. */
    u32 target(Offset off) const { return tgt_[off]; }

    /** Raw per-offset fallthrough array (size() entries) for linear
     *  sweeps; same encoding as fallthrough(). */
    const u32 *ftData() const { return ft_; }

    /** Raw per-offset direct-target array. */
    const u32 *tgtData() const { return tgt_; }

  private:
    std::size_t n_ = 0;
    /** Successor arrays: aliased from the Superset when it carries
     *  them (accelerated builds), arena-allocated otherwise. */
    const u32 *ft_ = nullptr;
    const u32 *tgt_ = nullptr;
};

} // namespace accdis

#endif // ACCDIS_SUPERSET_EDGES_HH
