#include "superset/edges.hh"

namespace accdis
{

SupersetEdges::SupersetEdges(const Superset &superset, Arena &arena)
    : n_(superset.size())
{
    static_assert(kNone == Superset::kEdgeNone &&
                      kEscape == Superset::kEdgeEscape &&
                      kInvalid == Superset::kEdgeInvalid &&
                      kEscapeCall == Superset::kEdgeEscapeCall,
                  "successor encodings must agree");
    // Accelerated superset builds derived the flat successor arrays
    // during the fill (the facets were already in registers there);
    // alias them instead of re-deriving from the packed nodes. The
    // superset artifact outlives these edges — both live on the
    // context, and invalidating the superset drops the edges with it.
    if (!superset.ftSuccessors().empty()) {
        ft_ = superset.ftSuccessors().data();
        tgt_ = superset.tgtSuccessors().data();
        return;
    }
    u32 *ft = arena.allocArray<u32>(n_);
    u32 *tgt = arena.allocArray<u32>(n_);
    for (Offset off = 0; off < n_; ++off) {
        const SupersetNode &node = superset.node(off);
        u32 f = kNone;
        u32 t = kNone;
        if (node.valid()) {
            if (node.fallsThrough()) {
                Offset next = off + node.length;
                f = next < n_ ? static_cast<u32>(next) : kEscape;
            }
            if (node.hasDirectTarget()) {
                s64 rel = static_cast<s64>(off) + node.targetRel;
                t = (rel >= 0 && static_cast<u64>(rel) < n_)
                        ? static_cast<u32>(rel)
                    : node.flow == x86::CtrlFlow::Call
                        ? kEscapeCall
                        : kEscape;
            }
        } else {
            f = kInvalid;
        }
        ft[off] = f;
        tgt[off] = t;
    }
    ft_ = ft;
    tgt_ = tgt;
}

} // namespace accdis
