/**
 * @file
 * The superset-decode evidence pass: builds the per-offset decode
 * artifact every other pass consumes.
 */

#ifndef ACCDIS_SUPERSET_SUPERSET_PASS_HH
#define ACCDIS_SUPERSET_SUPERSET_PASS_HH

#include "core/pass.hh"

namespace accdis
{

/** Decodes every byte offset into the context's Superset artifact. */
class SupersetDecodePass final : public EvidencePass
{
  public:
    const char *name() const override { return "superset_decode"; }
    void run(AnalysisContext &ctx) const override;
};

} // namespace accdis

#endif // ACCDIS_SUPERSET_SUPERSET_PASS_HH
