#include "superset/superset_pass.hh"

#include "core/context.hh"
#include "core/engine.hh"

namespace accdis
{

void
SupersetDecodePass::run(AnalysisContext &ctx) const
{
    // A warm-start (deserialized cache artifact) may have seeded the
    // slot before the passes ran; the nodes are a pure function of
    // the bytes, so re-decoding would only reproduce them.
    if (!ctx.superset.present())
        ctx.superset.emplace(ctx.bytes, ctx.config.acceleratedHotPath,
                             ctx.config.hotPathStats, ctx.config.mode);
    ctx.stats.supersetBytes =
        ctx.superset->size() * sizeof(SupersetNode);
}

} // namespace accdis
