#include "superset/superset_pass.hh"

#include "core/context.hh"

namespace accdis
{

void
SupersetDecodePass::run(AnalysisContext &ctx) const
{
    Superset &superset = ctx.superset.emplace(ctx.bytes);
    ctx.stats.supersetBytes = superset.size() * sizeof(SupersetNode);
}

} // namespace accdis
