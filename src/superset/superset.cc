#include "superset/superset.hh"

#include <cstring>
#include <utility>

#include "support/error.hh"
#include "x86/decoder.hh"
#include "x86/prescan.hh"

namespace accdis
{

namespace
{

/** Populate one node from a full decode. No-op on invalid decodes. */
bool
fillNode(SupersetNode &n, const x86::Instruction &insn, Offset off)
{
    if (!insn.valid())
        return false;
    n.length = insn.length;
    n.opcodeByte = insn.opcodeByte;
    n.op = insn.op;
    n.flow = insn.flow;
    n.setFlags(insn.flags);
    n.setHasTarget(insn.hasTarget);
    if (insn.hasTarget)
        n.targetRel =
            static_cast<s32>(insn.target - static_cast<s64>(off));
    n.setRegsRead(insn.regsRead);
    n.setRegsWritten(insn.regsWritten);
    return true;
}

/**
 * Populate one node from a prescan template entry. The entry's field
 * layout mirrors the node byte for byte (register masks pre-split,
 * hasTarget folded into the flag word; the entry's state byte lands
 * on the node's reserved byte and is zeroed), so the common kValid
 * case is a single 16-byte copy; kValidRel32 re-reads the rel32
 * target and kValidSib patches the SIB byte's contribution.
 */
bool
fillNode(SupersetNode &n, const x86::PrescanEntry &e, ByteSpan bytes,
         Offset off)
{
    if (e.state == x86::PrescanEntry::kInvalid)
        return false;
    static_assert(sizeof(n) == sizeof(e));
    std::memcpy(&n, &e, sizeof(n));
    n.reserved = 0;
    if (e.state == x86::PrescanEntry::kValidRel32)
        n.targetRel =
            static_cast<s32>(e.length) +
            static_cast<s32>(readLe32(bytes, off + e.length - 4));
    else if (e.state == x86::PrescanEntry::kValidSib)
        x86::prescanApplySib(e, bytes, off, n.length, n.regsReadLow);
    return true;
}

/**
 * The accelerated per-byte scan, instantiated once per decode mode so
 * the mode dispatch (which prescan key schema to probe, which decoder
 * tables to fall back to) is resolved at compile time and stays out of
 * the per-byte loop — the x64 instantiation inlines to exactly the
 * pre-mode-refactor loop.
 */
template <x86::DecodeMode kMode>
u64
scanAccelerated(ByteSpan bytes, std::vector<SupersetNode> &nodes,
                std::vector<u32> &ftSucc, std::vector<u32> &tgtSucc,
                u64 &validCount)
{
    using Superset = accdis::Superset;
    u64 fast = 0;
    const std::size_t n = bytes.size();
    ftSucc.resize(n);
    tgtSucc.resize(n);
    // Hoist the table base: fetching it per byte re-checks the
    // lazy-init guard 20M+ times per corpus run.
    const x86::PrescanEntry *table = x86::prescanTableData(kMode);
    // Keys are data-dependent and the tables exceed L2; issuing
    // the probe a cache-latency's worth of bytes early turns a
    // miss per byte into a hit per byte on the sequential scan.
    constexpr Offset kPrefetchAhead = 24;
    for (Offset off = 0; off < n; ++off) {
        if (off + kPrefetchAhead + 2 < n) {
            const x86::PrescanEntry *ahead =
                kMode == x86::DecodeMode::X64
                    ? x86::prescanEntryAddr(table, bytes,
                                            off + kPrefetchAhead)
                    : x86::prescanEntryAddr32(table, bytes,
                                              off + kPrefetchAhead);
            __builtin_prefetch(ahead, 0, 1);
        }
        const x86::PrescanEntry *e =
            kMode == x86::DecodeMode::X64
                ? x86::prescanLookup(table, bytes, off)
                : x86::prescanLookup32(table, bytes, off);
        if (e) {
            ++fast;
            if (fillNode(nodes[off], *e, bytes, off))
                ++validCount;
        } else if (fillNode(nodes[off], x86::decode(bytes, off, kMode),
                            off)) {
            ++validCount;
        }
        // Derive the flat successors now, while the node is hot:
        // SupersetEdges then skips its node re-scan entirely. The
        // valid/falls/target mix varies byte to byte, so the
        // selects are written as ternary chains (cmov) rather
        // than branches.
        const SupersetNode &node = nodes[off];
        const Offset next = off + node.length;
        u32 ft = !node.valid()        ? Superset::kEdgeInvalid
                 : !node.fallsThrough() ? Superset::kEdgeNone
                 : next < n             ? static_cast<u32>(next)
                                        : Superset::kEdgeEscape;
        const s64 t = static_cast<s64>(off) + node.targetRel;
        u32 tgt =
            !node.hasDirectTarget() ? Superset::kEdgeNone
            : t >= 0 && static_cast<u64>(t) < n
                ? static_cast<u32>(t)
            : node.flow == x86::CtrlFlow::Call ? Superset::kEdgeEscapeCall
                                               : Superset::kEdgeEscape;
        ftSucc[off] = ft;
        tgtSucc[off] = tgt;
    }
    return fast;
}

} // namespace

Superset::Superset(ByteSpan bytes, std::vector<SupersetNode> nodes,
                   u64 validCount, x86::DecodeMode mode)
    : bytes_(bytes), mode_(mode), nodes_(std::move(nodes)),
      validCount_(validCount)
{
    if (nodes_.size() != bytes.size())
        throw Error("superset: warm-start node count mismatch");
}

Superset::Superset(ByteSpan bytes, x86::DecodeMode mode)
    : Superset(bytes, false, nullptr, mode)
{
}

Superset::Superset(ByteSpan bytes, bool accelerated, HotPathStats *stats,
                   x86::DecodeMode mode)
    : bytes_(bytes), mode_(mode)
{
    nodes_.resize(bytes.size());
    u64 fast = 0;
    if (accelerated) {
        fast = mode == x86::DecodeMode::X64
                   ? scanAccelerated<x86::DecodeMode::X64>(
                         bytes, nodes_, ftSucc_, tgtSucc_, validCount_)
                   : scanAccelerated<x86::DecodeMode::X86>(
                         bytes, nodes_, ftSucc_, tgtSucc_, validCount_);
    } else {
        for (Offset off = 0; off < bytes.size(); ++off) {
            if (fillNode(nodes_[off], x86::decode(bytes, off, mode),
                         off))
                ++validCount_;
        }
    }
    if (stats) {
        stats->fastPathNodes.fetch_add(fast, std::memory_order_relaxed);
        stats->totalNodes.fetch_add(bytes.size(),
                                    std::memory_order_relaxed);
    }
}

x86::Instruction
Superset::decodeFull(Offset off) const
{
    return x86::decode(bytes_, off, mode_);
}

} // namespace accdis
