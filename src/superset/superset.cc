#include "superset/superset.hh"

#include <utility>

#include "support/error.hh"
#include "x86/decoder.hh"

namespace accdis
{

Superset::Superset(ByteSpan bytes, std::vector<SupersetNode> nodes,
                   u64 validCount)
    : bytes_(bytes), nodes_(std::move(nodes)), validCount_(validCount)
{
    if (nodes_.size() != bytes.size())
        throw Error("superset: warm-start node count mismatch");
}

Superset::Superset(ByteSpan bytes) : bytes_(bytes)
{
    nodes_.resize(bytes.size());
    for (Offset off = 0; off < bytes.size(); ++off) {
        x86::Instruction insn = x86::decode(bytes, off);
        if (!insn.valid())
            continue;
        SupersetNode &n = nodes_[off];
        n.length = insn.length;
        n.opcodeByte = insn.opcodeByte;
        n.op = insn.op;
        n.flow = insn.flow;
        n.setFlags(insn.flags);
        n.setHasTarget(insn.hasTarget);
        if (insn.hasTarget)
            n.targetRel =
                static_cast<s32>(insn.target - static_cast<s64>(off));
        n.setRegsRead(insn.regsRead);
        n.setRegsWritten(insn.regsWritten);
        ++validCount_;
    }
}

x86::Instruction
Superset::decodeFull(Offset off) const
{
    return x86::decode(bytes_, off);
}

} // namespace accdis
