/**
 * @file
 * Superset ("exhaustive") disassembly: one decode attempt at every
 * byte offset of a section, stored compactly for the analyses.
 */

#ifndef ACCDIS_SUPERSET_SUPERSET_HH
#define ACCDIS_SUPERSET_SUPERSET_HH

#include <vector>

#include "support/types.hh"
#include "x86/instruction.hh"

namespace accdis
{

/**
 * Compact per-offset summary of a superset decode. A full Instruction
 * is ~100 bytes; keeping one per section byte would be prohibitive for
 * multi-megabyte sections, so the superset stores only the facets the
 * analyses consume and re-decodes on demand for the rest.
 */
struct SupersetNode
{
    u8 length = 0; ///< 0 means the decode at this offset is invalid.
    u8 opcodeByte = 0; ///< Last opcode byte (n-gram sub-tokens).
    x86::Op op = x86::Op::Invalid;
    x86::CtrlFlow flow = x86::CtrlFlow::None;
    u16 flags = 0;
    s32 targetRel = 0; ///< Branch target minus node offset.
    bool hasTarget = false;
    x86::RegMask regsRead = 0;
    x86::RegMask regsWritten = 0;

    bool valid() const { return length != 0; }

    bool
    fallsThrough() const
    {
        using x86::CtrlFlow;
        switch (flow) {
          case CtrlFlow::None:
          case CtrlFlow::CondJump:
          case CtrlFlow::Call:
          case CtrlFlow::IndirectCall:
            return true;
          default:
            return false;
        }
    }

    bool
    hasDirectTarget() const
    {
        using x86::CtrlFlow;
        return hasTarget &&
               (flow == CtrlFlow::Jump || flow == CtrlFlow::CondJump ||
                flow == CtrlFlow::Call);
    }
};

/**
 * The superset instruction graph over one section: a node per offset
 * plus fallthrough/branch successor accessors.
 */
class Superset
{
  public:
    /** Decode every offset of @p bytes. */
    explicit Superset(ByteSpan bytes);

    /** Number of byte offsets (== section size). */
    std::size_t size() const { return nodes_.size(); }

    /** The raw section bytes the superset was built over. */
    ByteSpan bytes() const { return bytes_; }

    /** Node at @p off. @pre off < size(). */
    const SupersetNode &node(Offset off) const { return nodes_[off]; }

    /** True when a valid instruction decodes at @p off. */
    bool
    validAt(Offset off) const
    {
        return off < nodes_.size() && nodes_[off].valid();
    }

    /** Fallthrough successor offset, or kNoAddr when none. */
    Offset
    fallthrough(Offset off) const
    {
        const SupersetNode &n = nodes_[off];
        if (!n.valid() || !n.fallsThrough())
            return kNoAddr;
        Offset next = off + n.length;
        return next < nodes_.size() ? next : kNoAddr;
    }

    /**
     * Direct branch target offset, or kNoAddr when the node has no
     * direct target or the target escapes the section.
     */
    Offset
    target(Offset off) const
    {
        const SupersetNode &n = nodes_[off];
        if (!n.valid() || !n.hasDirectTarget())
            return kNoAddr;
        s64 t = static_cast<s64>(off) + n.targetRel;
        if (t < 0 || static_cast<u64>(t) >= nodes_.size())
            return kNoAddr;
        return static_cast<Offset>(t);
    }

    /**
     * True when the node's direct target leaves the section (distinct
     * from having no target at all).
     */
    bool
    targetEscapes(Offset off) const
    {
        const SupersetNode &n = nodes_[off];
        if (!n.valid() || !n.hasDirectTarget())
            return false;
        s64 t = static_cast<s64>(off) + n.targetRel;
        return t < 0 || static_cast<u64>(t) >= nodes_.size();
    }

    /** Count of offsets with a valid decode. */
    u64 validCount() const { return validCount_; }

    /** Re-decode the full Instruction at @p off (on-demand detail). */
    x86::Instruction decodeFull(Offset off) const;

  private:
    ByteSpan bytes_;
    std::vector<SupersetNode> nodes_;
    u64 validCount_ = 0;
};

} // namespace accdis

#endif // ACCDIS_SUPERSET_SUPERSET_HH
