/**
 * @file
 * Superset ("exhaustive") disassembly: one decode attempt at every
 * byte offset of a section, stored compactly for the analyses.
 */

#ifndef ACCDIS_SUPERSET_SUPERSET_HH
#define ACCDIS_SUPERSET_SUPERSET_HH

#include <vector>

#include "support/hotpath.hh"
#include "support/types.hh"
#include "x86/instruction.hh"
#include "x86/mode.hh"

namespace accdis
{

/**
 * Compact per-offset summary of a superset decode. A full Instruction
 * is ~100 bytes; keeping one per section byte would be prohibitive for
 * multi-megabyte sections, so the superset stores only the facets the
 * analyses consume and re-decodes on demand for the rest.
 *
 * The node is hand-packed to exactly 16 bytes (one node per section
 * byte dominates the engine's memory footprint): hasTarget is folded
 * into the unused top bit of the InsnFlag word, and the two 19-bit
 * register masks (16 GPRs + flags/vector/x87 pseudo-registers) split
 * into 16-bit halves plus a shared high byte.
 */
struct SupersetNode
{
    u8 length = 0; ///< 0 means the decode at this offset is invalid.
    u8 opcodeByte = 0; ///< Last opcode byte (n-gram sub-tokens).
    x86::Op op = x86::Op::Invalid;
    x86::CtrlFlow flow = x86::CtrlFlow::None;
    /** InsnFlag bits 0-14; bit 15 stores hasTarget. */
    u16 packedFlags = 0;
    /** regsRead/regsWritten bits 0-15 (the GPRs). */
    u16 regsReadLow = 0;
    s32 targetRel = 0; ///< Branch target minus node offset.
    u16 regsWrittenLow = 0;
    /** regsRead bits 16-18 in the low nibble, regsWritten bits 16-18
     *  in the high nibble (flags/vector/x87 pseudo-registers). */
    u8 regsHigh = 0;
    u8 reserved = 0;

    static constexpr u16 kHasTargetBit = u16{1} << 15;

    bool valid() const { return length != 0; }

    /** The decoder's InsnFlag word. */
    u16 flags() const { return packedFlags & ~kHasTargetBit; }

    bool hasTarget() const { return packedFlags & kHasTargetBit; }

    x86::RegMask
    regsRead() const
    {
        return regsReadLow |
               (x86::RegMask{regsHigh} & 0x7) << 16;
    }

    x86::RegMask
    regsWritten() const
    {
        return regsWrittenLow |
               (x86::RegMask{regsHigh} >> 4 & 0x7) << 16;
    }

    void
    setFlags(u16 value)
    {
        packedFlags =
            (packedFlags & kHasTargetBit) | (value & ~kHasTargetBit);
    }

    void
    setHasTarget(bool value)
    {
        if (value)
            packedFlags |= kHasTargetBit;
        else
            packedFlags &= ~kHasTargetBit;
    }

    void
    setRegsRead(x86::RegMask mask)
    {
        regsReadLow = static_cast<u16>(mask);
        regsHigh = (regsHigh & 0xf0) |
                   static_cast<u8>(mask >> 16 & 0x7);
    }

    void
    setRegsWritten(x86::RegMask mask)
    {
        regsWrittenLow = static_cast<u16>(mask);
        regsHigh = (regsHigh & 0x0f) |
                   static_cast<u8>((mask >> 16 & 0x7) << 4);
    }

    bool
    fallsThrough() const
    {
        using x86::CtrlFlow;
        switch (flow) {
          case CtrlFlow::None:
          case CtrlFlow::CondJump:
          case CtrlFlow::Call:
          case CtrlFlow::IndirectCall:
            return true;
          default:
            return false;
        }
    }

    bool
    hasDirectTarget() const
    {
        using x86::CtrlFlow;
        return hasTarget() &&
               (flow == CtrlFlow::Jump || flow == CtrlFlow::CondJump ||
                flow == CtrlFlow::Call);
    }
};

static_assert(sizeof(SupersetNode) == 16,
              "SupersetNode must stay 16 bytes: one node per section "
              "byte dominates engine memory");

/**
 * The superset instruction graph over one section: a node per offset
 * plus fallthrough/branch successor accessors.
 */
class Superset
{
  public:
    /** Decode every offset of @p bytes under @p mode. */
    explicit Superset(ByteSpan bytes,
                      x86::DecodeMode mode = x86::DecodeMode::X64);

    /**
     * Decode every offset, optionally through the prescan fast path
     * (x86/prescan.hh): offsets whose facets @p mode's template tables
     * determine skip the full decoder. Output is byte-identical to the
     * plain constructor — the prescan defers anything it cannot prove.
     * @p stats (may be null) receives fast-path/total node counts.
     */
    Superset(ByteSpan bytes, bool accelerated, HotPathStats *stats,
             x86::DecodeMode mode = x86::DecodeMode::X64);

    /**
     * Rebind previously decoded nodes to @p bytes without re-decoding
     * (cache warm start). @p nodes must be the decode of exactly
     * these bytes under @p mode — one node per byte offset; callers
     * get that guarantee from the result cache's content+mode key.
     * @throws Error when the node count does not match the section.
     */
    Superset(ByteSpan bytes, std::vector<SupersetNode> nodes,
             u64 validCount,
             x86::DecodeMode mode = x86::DecodeMode::X64);

    /** Number of byte offsets (== section size). */
    std::size_t size() const { return nodes_.size(); }

    /** The raw section bytes the superset was built over. */
    ByteSpan bytes() const { return bytes_; }

    /** The decode mode the superset was built under. */
    x86::DecodeMode mode() const { return mode_; }

    /** Node at @p off. @pre off < size(). */
    const SupersetNode &node(Offset off) const { return nodes_[off]; }

    /** True when a valid instruction decodes at @p off. */
    bool
    validAt(Offset off) const
    {
        return off < nodes_.size() && nodes_[off].valid();
    }

    /** Fallthrough successor offset, or kNoAddr when none. */
    Offset
    fallthrough(Offset off) const
    {
        const SupersetNode &n = nodes_[off];
        if (!n.valid() || !n.fallsThrough())
            return kNoAddr;
        Offset next = off + n.length;
        return next < nodes_.size() ? next : kNoAddr;
    }

    /**
     * Direct branch target offset, or kNoAddr when the node has no
     * direct target or the target escapes the section.
     */
    Offset
    target(Offset off) const
    {
        const SupersetNode &n = nodes_[off];
        if (!n.valid() || !n.hasDirectTarget())
            return kNoAddr;
        s64 t = static_cast<s64>(off) + n.targetRel;
        if (t < 0 || static_cast<u64>(t) >= nodes_.size())
            return kNoAddr;
        return static_cast<Offset>(t);
    }

    /**
     * True when the node's direct target leaves the section (distinct
     * from having no target at all).
     */
    bool
    targetEscapes(Offset off) const
    {
        const SupersetNode &n = nodes_[off];
        if (!n.valid() || !n.hasDirectTarget())
            return false;
        s64 t = static_cast<s64>(off) + n.targetRel;
        return t < 0 || static_cast<u64>(t) >= nodes_.size();
    }

    /** Count of offsets with a valid decode. */
    u64 validCount() const { return validCount_; }

    /** The per-offset nodes, in offset order (serialization). */
    const std::vector<SupersetNode> &nodes() const { return nodes_; }

    /** Successor encoding shared with SupersetEdges. The sentinels
     *  are chosen so the flow seed is a pure function of the two
     *  arrays: an offset is node-locally non-code exactly when its
     *  fallthrough slot holds kEdgeInvalid/kEdgeEscape or its target
     *  slot holds kEdgeEscape (escaping *calls* are routine and carry
     *  their own sentinel). */
    static constexpr u32 kEdgeNone = 0xffffffff;
    static constexpr u32 kEdgeEscape = 0xfffffffe;
    /** Fallthrough slot only: no instruction decodes at the offset. */
    static constexpr u32 kEdgeInvalid = 0xfffffffd;
    /** Target slot only: a direct call whose target leaves the
     *  section (never fatal, unlike an escaping jump/branch). */
    static constexpr u32 kEdgeEscapeCall = 0xfffffffc;

    /**
     * Flat per-offset fallthrough successors (offset, kEdgeEscape or
     * kEdgeNone), filled by the accelerated constructor while the
     * node facets are still in registers. Empty on legacy and
     * warm-start builds — SupersetEdges re-derives from the nodes
     * then.
     */
    const std::vector<u32> &ftSuccessors() const { return ftSucc_; }

    /** Flat per-offset direct-target successors (same encoding). */
    const std::vector<u32> &tgtSuccessors() const { return tgtSucc_; }

    /** Re-decode the full Instruction at @p off (on-demand detail). */
    x86::Instruction decodeFull(Offset off) const;

  private:
    ByteSpan bytes_;
    x86::DecodeMode mode_ = x86::DecodeMode::X64;
    std::vector<SupersetNode> nodes_;
    std::vector<u32> ftSucc_;
    std::vector<u32> tgtSucc_;
    u64 validCount_ = 0;
};

} // namespace accdis

#endif // ACCDIS_SUPERSET_SUPERSET_HH
