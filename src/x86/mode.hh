/**
 * @file
 * Decode modes and their semantic facets.
 *
 * The decoder, the prescan tables and every downstream consumer are
 * parameterized over a DecodeMode instead of assuming x86-64. A mode
 * is deliberately tiny — a tag plus a descriptor of the handful of
 * semantic facets that differ between dialects (operand/address size
 * defaults, REX-vs-none, how mod=0 rm=5 resolves) — so that adding a
 * mode means adding table rows, not forking the decoder.
 *
 * Mode is identity, not configuration: it participates in
 * engine-config fingerprints, cache keys and serialized artifacts, so
 * an x86-32 analysis can never be satisfied by (or poison) x86-64
 * state.
 */

#ifndef ACCDIS_X86_MODE_HH
#define ACCDIS_X86_MODE_HH

#include "support/types.hh"

namespace accdis::x86
{

/** Instruction-set dialect a byte stream is decoded under. */
enum class DecodeMode : u8
{
    X64 = 0, ///< 64-bit long mode (the original target).
    X86 = 1, ///< 32-bit protected mode.
};

/** Number of DecodeMode values (table dimensioning). */
inline constexpr unsigned kNumDecodeModes = 2;

/**
 * The per-mode semantic facets consumers are allowed to depend on.
 * Everything else (opcode validity, encodings) lives in the opcode
 * tables, which are themselves keyed by mode.
 */
struct ModeFacets
{
    /** Default address size in bytes (8 or 4). */
    u8 addrSize;
    /** Largest operand size an encoding can select (8 or 4). */
    u8 maxOpSize;
    /** Effective size of kSpecD64 ("default 64") operations. */
    u8 d64Size;
    /** Architectural instruction-length cap (15 in both modes). */
    u8 maxInsnLen;
    /** 0x40-0x4F are REX prefixes (false: one-byte inc/dec). */
    bool hasRex;
    /** mod=0 rm=5 is RIP-relative (false: absolute disp32). */
    bool ripRelative;
};

constexpr ModeFacets
modeFacets(DecodeMode mode)
{
    return mode == DecodeMode::X64
               ? ModeFacets{8, 8, 8, 15, true, true}
               : ModeFacets{4, 4, 4, 15, false, false};
}

/** Stable lowercase mode name ("x64" / "x86"). */
constexpr const char *
decodeModeName(DecodeMode mode)
{
    return mode == DecodeMode::X64 ? "x64" : "x86";
}

/**
 * Parse a mode name; accepts the canonical names plus common aliases.
 * Returns true and sets @p out on success.
 */
bool decodeModeFromName(const char *name, DecodeMode &out);

} // namespace accdis::x86

#endif // ACCDIS_X86_MODE_HH
