#include "x86/decoder.hh"

#include <cassert>

#include "support/bytes.hh"
#include "x86/opcode_table.hh"

namespace accdis::x86
{

namespace
{

constexpr int kMaxInsnLen = 15;

/** Mutable decode context threaded through the helper functions. */
struct Ctx
{
    ByteSpan bytes;
    Offset start = 0;
    Offset cursor = 0;
    DecodeMode mode = DecodeMode::X64;

    // Prefix state.
    u8 rex = 0;          ///< REX byte (0x40-0x4f) or 0.
    bool rexStale = false; ///< A legacy prefix followed REX.
    bool opSize66 = false;
    bool addrSize67 = false;
    bool lock = false;
    u8 rep = 0;          ///< 0xf2, 0xf3 or 0.
    int segCount = 0;
    int prefixCount = 0;
    bool redundant = false;

    // VEX state.
    bool vex = false;
    u8 vexMap = 0;       ///< 1 = 0F, 2 = 0F38, 3 = 0F3A.
    u8 vexPp = 0;
    bool vexW = false;

    bool rexW() const { return !vex ? (rex & 0x08) != 0 : vexW; }
    u8 rexR() const { return (rex >> 2) & 1; }
    u8 rexX() const { return (rex >> 1) & 1; }
    u8 rexB() const { return rex & 1; }

    bool
    remaining(u64 n) const
    {
        return cursor + n <= bytes.size() &&
               cursor + n - start <= kMaxInsnLen;
    }

    u8 peek() const { return bytes[cursor]; }
    u8 take() { return bytes[cursor++]; }
};

Instruction
invalid(Offset off)
{
    Instruction insn;
    insn.offset = off;
    return insn;
}

/** Consume legacy and REX prefixes. Returns false on truncation. */
bool
consumePrefixes(Ctx &ctx)
{
    for (;;) {
        if (!ctx.remaining(1))
            return false;
        u8 b = ctx.peek();
        bool legacy = true;
        switch (b) {
          case 0x66:
            if (ctx.opSize66)
                ctx.redundant = true;
            ctx.opSize66 = true;
            break;
          case 0x67:
            if (ctx.addrSize67)
                ctx.redundant = true;
            ctx.addrSize67 = true;
            break;
          case 0xf0:
            if (ctx.lock)
                ctx.redundant = true;
            ctx.lock = true;
            break;
          case 0xf2:
          case 0xf3:
            if (ctx.rep)
                ctx.redundant = true;
            ctx.rep = b;
            break;
          case 0x26:
          case 0x2e:
          case 0x36:
          case 0x3e:
          case 0x64:
          case 0x65:
            ++ctx.segCount;
            break;
          default:
            // REX exists only in 64-bit mode; in 32-bit mode
            // 0x40-0x4F are one-byte inc/dec and reach table dispatch.
            if (ctx.mode == DecodeMode::X64 && b >= 0x40 && b <= 0x4f) {
                if (ctx.rex)
                    ctx.redundant = true;
                ctx.rex = b;
                ctx.rexStale = false;
                ctx.take();
                ++ctx.prefixCount;
                continue;
            }
            legacy = false;
            break;
        }
        if (!legacy)
            return true;
        // A legacy prefix after REX makes the REX byte meaningless;
        // hardware decodes as if REX were absent.
        if (ctx.rex) {
            ctx.rex = 0;
            ctx.rexStale = true;
            ctx.redundant = true;
        }
        ctx.take();
        ++ctx.prefixCount;
    }
}

/** Decode ModRM, SIB and displacement into @p insn. */
bool
consumeModRm(Ctx &ctx, Instruction &insn)
{
    if (!ctx.remaining(1))
        return false;
    u8 modrm = ctx.take();
    insn.hasModRm = true;
    insn.flags |= kFlagHasModRm;
    insn.modrmMod = modrm >> 6;
    insn.modrmReg = static_cast<u8>(((modrm >> 3) & 7) | (ctx.rexR() << 3));
    u8 rm = modrm & 7;
    insn.modrmRm = static_cast<u8>(rm | (ctx.rexB() << 3));

    if (insn.modrmMod == 3)
        return true; // Register operand; no memory bytes.

    int dispSize = 0;
    if (rm == 4) {
        // SIB byte.
        if (!ctx.remaining(1))
            return false;
        u8 sib = ctx.take();
        insn.hasSib = true;
        insn.sibScale = sib >> 6;
        u8 index = static_cast<u8>(((sib >> 3) & 7) | (ctx.rexX() << 3));
        u8 base = static_cast<u8>((sib & 7) | (ctx.rexB() << 3));
        insn.sibIndex = (index == RSP) ? 0xff : index; // RSP: no index.
        if ((sib & 7) == 5 && insn.modrmMod == 0) {
            insn.sibBase = 0xff; // disp32 base.
            dispSize = 4;
        } else {
            insn.sibBase = base;
        }
    } else if (rm == 5 && insn.modrmMod == 0) {
        if (ctx.mode == DecodeMode::X64) {
            // RIP-relative addressing.
            insn.ripRelative = true;
            insn.flags |= kFlagRipRelative;
        }
        // 32-bit mode: absolute disp32, no base register (sibBase
        // stays 0xff so the address computation reads no registers).
        dispSize = 4;
    } else {
        insn.sibBase = insn.modrmRm;
    }

    if (insn.modrmMod == 1)
        dispSize = 1;
    else if (insn.modrmMod == 2)
        dispSize = 4;

    if (dispSize == 1) {
        if (!ctx.remaining(1))
            return false;
        insn.disp = static_cast<s8>(ctx.take());
    } else if (dispSize == 4) {
        if (!ctx.remaining(4))
            return false;
        insn.disp = static_cast<s32>(readLe32(ctx.bytes, ctx.cursor));
        ctx.cursor += 4;
    }
    return true;
}

bool
consumeImm(Ctx &ctx, Instruction &insn, int size)
{
    if (!ctx.remaining(static_cast<u64>(size)))
        return false;
    switch (size) {
      case 1:
        insn.imm = static_cast<s8>(ctx.take());
        break;
      case 2:
        insn.imm = static_cast<s16>(readLe16(ctx.bytes, ctx.cursor));
        ctx.cursor += 2;
        break;
      case 4:
        insn.imm = static_cast<s32>(readLe32(ctx.bytes, ctx.cursor));
        ctx.cursor += 4;
        break;
      case 8:
        insn.imm = static_cast<s64>(readLe64(ctx.bytes, ctx.cursor));
        ctx.cursor += 8;
        break;
      default:
        assert(false);
    }
    insn.hasImm = true;
    return true;
}

/** Registers read by a memory operand's address computation. */
RegMask
memAddrRegs(const Instruction &insn)
{
    RegMask mask = 0;
    if (insn.modrmMod == 3 || insn.ripRelative)
        return mask;
    if (insn.sibBase != 0xff)
        mask |= regBit(insn.sibBase);
    if (insn.hasSib && insn.sibIndex != 0xff)
        mask |= regBit(insn.sibIndex);
    return mask;
}

/** True when the instruction's r/m operand is a memory operand. */
bool
rmIsMem(const Instruction &insn)
{
    return insn.hasModRm && insn.modrmMod != 3;
}

void
addRmRead(Instruction &insn)
{
    if (rmIsMem(insn)) {
        insn.flags |= kFlagReadsMem;
        insn.regsRead |= memAddrRegs(insn);
    } else if (insn.hasModRm) {
        insn.regsRead |= regBit(insn.modrmRm);
    }
}

void
addRmWrite(Instruction &insn)
{
    if (rmIsMem(insn)) {
        insn.flags |= kFlagWritesMem;
        insn.regsRead |= memAddrRegs(insn);
    } else if (insn.hasModRm) {
        insn.regsWritten |= regBit(insn.modrmRm);
    }
}

void
addRegRead(Instruction &insn)
{
    insn.regsRead |= regBit(insn.modrmReg);
}

void
addRegWrite(Instruction &insn)
{
    insn.regsWritten |= regBit(insn.modrmReg);
}

constexpr RegMask kFlagsBit = regBit(RegFlags);

/**
 * Populate regsRead/regsWritten and memory-access flags from the
 * decoded operands. Deliberately coarse (an AH write counts as an RSP
 * write in byte mode without REX; acceptable for the analyses).
 */
void
applySemantics(Ctx &ctx, Instruction &insn, const OpSpec &sp)
{
    // Record the opcode-embedded register for the forms that have one
    // (push/pop r, mov r imm, xchg rAX r, bswap r).
    if (insn.opcodeMap == 0) {
        u8 b = insn.opcodeByte;
        if ((b & 0xf8) == 0x50 || (b & 0xf8) == 0x58 ||
            (b & 0xf0) == 0xb0 || ((b & 0xf8) == 0x90 && b != 0x90))
            insn.opReg =
                static_cast<u8>((b & 7) | (ctx.rexB() << 3));
    } else if (insn.opcodeMap == 1 &&
               (insn.opcodeByte & 0xf8) == 0xc8) {
        insn.opReg = static_cast<u8>((insn.opcodeByte & 7) |
                                     (ctx.rexB() << 3));
    }

    // Direction of two-operand ModRM forms in the classic maps: bit 1
    // of the one-byte opcode selects reg<-rm; the 0F map conventions
    // are handled per-op below.
    const bool regIsDest =
        insn.opcodeMap == 0 && (insn.opcodeByte & 0x02) != 0;

    auto twoOperand = [&](bool destRead) {
        if (!insn.hasModRm) {
            // Immediate-with-accumulator form.
            if (destRead)
                insn.regsRead |= regBit(RAX);
            insn.regsWritten |= regBit(RAX);
            return;
        }
        if (sp.group == kGrp1 || sp.group == kGrp11b ||
            sp.group == kGrp11v) {
            // Immediate source; rm is the destination.
            if (destRead)
                addRmRead(insn);
            addRmWrite(insn);
            return;
        }
        if (regIsDest) {
            addRmRead(insn);
            if (destRead)
                addRegRead(insn);
            addRegWrite(insn);
        } else {
            addRegRead(insn);
            if (destRead)
                addRmRead(insn);
            addRmWrite(insn);
        }
    };

    switch (insn.op) {
      case Op::Add: case Op::Or: case Op::Adc: case Op::Sbb:
      case Op::And: case Op::Sub: case Op::Xor:
        twoOperand(true);
        insn.regsWritten |= kFlagsBit;
        if (insn.op == Op::Adc || insn.op == Op::Sbb)
            insn.regsRead |= kFlagsBit;
        break;

      case Op::Cmp:
        if (!insn.hasModRm) {
            insn.regsRead |= regBit(RAX);
        } else if (sp.group == kGrp1) {
            addRmRead(insn);
        } else {
            addRmRead(insn);
            addRegRead(insn);
        }
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Test:
        if (!insn.hasModRm) {
            insn.regsRead |= regBit(RAX);
        } else if (sp.group == kGrp3b || sp.group == kGrp3v) {
            addRmRead(insn);
        } else {
            addRmRead(insn);
            addRegRead(insn);
        }
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Mov:
        if (!insn.hasModRm) {
            // OI or MOffs forms.
            if (insn.opcodeMap == 0 && (insn.opcodeByte & 0xf0) == 0xb0) {
                u8 reg = static_cast<u8>((insn.opcodeByte & 7) |
                                         (ctx.rexB() << 3));
                insn.regsWritten |= regBit(reg);
            } else {
                // moffs forms: direction from bit 1.
                if (insn.opcodeByte == 0xa0 || insn.opcodeByte == 0xa1) {
                    insn.flags |= kFlagReadsMem;
                    insn.regsWritten |= regBit(RAX);
                } else {
                    insn.flags |= kFlagWritesMem;
                    insn.regsRead |= regBit(RAX);
                }
            }
        } else {
            twoOperand(false);
        }
        break;

      case Op::Movsxd: case Op::Movzx: case Op::Movsx:
        addRmRead(insn);
        addRegWrite(insn);
        break;

      case Op::Lea:
        insn.regsRead |= memAddrRegs(insn);
        addRegWrite(insn);
        // LEA computes an address but never touches memory.
        insn.flags &= static_cast<u16>(~(kFlagReadsMem | kFlagWritesMem));
        break;

      case Op::Xchg:
        if (!insn.hasModRm) {
            u8 reg = static_cast<u8>((insn.opcodeByte & 7) |
                                     (ctx.rexB() << 3));
            insn.regsRead |= regBit(RAX) | regBit(reg);
            insn.regsWritten |= regBit(RAX) | regBit(reg);
        } else {
            addRmRead(insn);
            addRmWrite(insn);
            addRegRead(insn);
            addRegWrite(insn);
        }
        break;

      case Op::Push:
        insn.regsRead |= regBit(RSP);
        insn.regsWritten |= regBit(RSP);
        if (insn.hasModRm) {
            addRmRead(insn);
        } else if (insn.opcodeMap == 0 &&
                   (insn.opcodeByte & 0xf8) == 0x50) {
            insn.regsRead |= regBit(static_cast<u8>(
                (insn.opcodeByte & 7) | (ctx.rexB() << 3)));
        }
        break;

      case Op::Pop:
        insn.regsRead |= regBit(RSP);
        insn.regsWritten |= regBit(RSP);
        if (insn.hasModRm) {
            addRmWrite(insn);
        } else if (insn.opcodeMap == 0 &&
                   (insn.opcodeByte & 0xf8) == 0x58) {
            insn.regsWritten |= regBit(static_cast<u8>(
                (insn.opcodeByte & 7) | (ctx.rexB() << 3)));
        }
        break;

      case Op::Inc: case Op::Dec:
        if (!insn.hasModRm && insn.opcodeMap == 0 &&
            (insn.opcodeByte & 0xf0) == 0x40) {
            // 32-bit one-byte inc/dec r32 (REX slots in 64-bit mode).
            u8 reg = insn.opcodeByte & 7;
            insn.opReg = reg;
            insn.regsRead |= regBit(reg);
            insn.regsWritten |= regBit(reg);
        } else {
            addRmRead(insn);
            addRmWrite(insn);
        }
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Not:
        addRmRead(insn);
        addRmWrite(insn);
        break;

      case Op::Neg:
        addRmRead(insn);
        addRmWrite(insn);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Mul: case Op::Div: case Op::Idiv:
        addRmRead(insn);
        insn.regsRead |= regBit(RAX) | regBit(RDX);
        insn.regsWritten |= regBit(RAX) | regBit(RDX) | kFlagsBit;
        break;

      case Op::Imul:
        if (insn.hasModRm && (sp.group == kGrp3b || sp.group == kGrp3v)) {
            addRmRead(insn);
            insn.regsRead |= regBit(RAX);
            insn.regsWritten |= regBit(RAX) | regBit(RDX) | kFlagsBit;
        } else {
            addRmRead(insn);
            if (!insn.hasImm)
                addRegRead(insn); // 0F AF form reads the destination.
            addRegWrite(insn);
            insn.regsWritten |= kFlagsBit;
        }
        break;

      case Op::Rol: case Op::Ror: case Op::Rcl: case Op::Rcr:
      case Op::Shl: case Op::Shr: case Op::Sal: case Op::Sar:
        addRmRead(insn);
        addRmWrite(insn);
        if (sp.flags & kSpecShiftCl) {
            // handled at call site via parent flags
        }
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Shld: case Op::Shrd:
        addRmRead(insn);
        addRmWrite(insn);
        addRegRead(insn);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Bt:
        addRmRead(insn);
        if (!insn.hasImm)
            addRegRead(insn);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Bts: case Op::Btr: case Op::Btc:
        addRmRead(insn);
        addRmWrite(insn);
        if (!insn.hasImm)
            addRegRead(insn);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Bsf: case Op::Bsr: case Op::Popcnt:
        addRmRead(insn);
        addRegWrite(insn);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Jcc:
        insn.regsRead |= kFlagsBit;
        break;

      case Op::Loop: case Op::Loope: case Op::Loopne:
        insn.regsRead |= regBit(RCX);
        insn.regsWritten |= regBit(RCX);
        if (insn.op != Op::Loop)
            insn.regsRead |= kFlagsBit;
        break;

      case Op::Jrcxz:
        insn.regsRead |= regBit(RCX);
        break;

      case Op::Call:
        insn.regsRead |= regBit(RSP);
        insn.regsWritten |= regBit(RSP);
        if (insn.flow == CtrlFlow::IndirectCall)
            addRmRead(insn);
        break;

      case Op::Jmp:
        if (insn.flow == CtrlFlow::IndirectJump)
            addRmRead(insn);
        break;

      case Op::Ret: case Op::Retf: case Op::Iret:
        insn.regsRead |= regBit(RSP);
        insn.regsWritten |= regBit(RSP);
        break;

      case Op::Setcc:
        insn.regsRead |= kFlagsBit;
        addRmWrite(insn);
        break;

      case Op::Cmovcc:
        insn.regsRead |= kFlagsBit;
        addRmRead(insn);
        addRegRead(insn);
        addRegWrite(insn);
        break;

      case Op::Movs:
        insn.regsRead |= regBit(RSI) | regBit(RDI) | kFlagsBit;
        insn.regsWritten |= regBit(RSI) | regBit(RDI);
        insn.flags |= kFlagReadsMem | kFlagWritesMem;
        break;

      case Op::Cmps:
        insn.regsRead |= regBit(RSI) | regBit(RDI) | kFlagsBit;
        insn.regsWritten |= regBit(RSI) | regBit(RDI) | kFlagsBit;
        insn.flags |= kFlagReadsMem;
        break;

      case Op::Stos:
        insn.regsRead |= regBit(RAX) | regBit(RDI) | kFlagsBit;
        insn.regsWritten |= regBit(RDI);
        insn.flags |= kFlagWritesMem;
        break;

      case Op::Lods:
        insn.regsRead |= regBit(RSI) | kFlagsBit;
        insn.regsWritten |= regBit(RAX) | regBit(RSI);
        insn.flags |= kFlagReadsMem;
        break;

      case Op::Scas:
        insn.regsRead |= regBit(RAX) | regBit(RDI) | kFlagsBit;
        insn.regsWritten |= regBit(RDI) | kFlagsBit;
        insn.flags |= kFlagReadsMem;
        break;

      case Op::Ins: case Op::Outs:
        insn.regsRead |= regBit(RDX) | regBit(RSI) | regBit(RDI);
        insn.regsWritten |= regBit(RSI) | regBit(RDI);
        break;

      case Op::Xlat:
        insn.regsRead |= regBit(RAX) | regBit(RBX);
        insn.regsWritten |= regBit(RAX);
        insn.flags |= kFlagReadsMem;
        break;

      case Op::Cwde:
        insn.regsRead |= regBit(RAX);
        insn.regsWritten |= regBit(RAX);
        break;

      case Op::Cdq:
        insn.regsRead |= regBit(RAX);
        insn.regsWritten |= regBit(RDX);
        break;

      case Op::Pushf:
        insn.regsRead |= kFlagsBit | regBit(RSP);
        insn.regsWritten |= regBit(RSP);
        break;

      case Op::Popf:
        insn.regsRead |= regBit(RSP);
        insn.regsWritten |= kFlagsBit | regBit(RSP);
        break;

      case Op::Sahf:
        insn.regsRead |= regBit(RAX);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Lahf:
        insn.regsRead |= kFlagsBit;
        insn.regsWritten |= regBit(RAX);
        break;

      case Op::Cmc: case Op::Clc: case Op::Stc: case Op::Cld:
      case Op::Std: case Op::Cli: case Op::Sti:
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Enter: case Op::Leave:
        insn.regsRead |= regBit(RSP) | regBit(RBP);
        insn.regsWritten |= regBit(RSP) | regBit(RBP);
        break;

      case Op::Xadd:
        addRmRead(insn);
        addRmWrite(insn);
        addRegRead(insn);
        addRegWrite(insn);
        insn.regsWritten |= kFlagsBit;
        break;

      case Op::Cmpxchg:
        addRmRead(insn);
        addRmWrite(insn);
        if (insn.opcodeMap == 1 &&
            (insn.opcodeByte == 0xb0 || insn.opcodeByte == 0xb1))
            addRegRead(insn);
        insn.regsRead |= regBit(RAX);
        insn.regsWritten |= regBit(RAX) | kFlagsBit;
        break;

      case Op::Bswap: {
        u8 reg = static_cast<u8>((insn.opcodeByte & 7) |
                                 (ctx.rexB() << 3));
        insn.regsRead |= regBit(reg);
        insn.regsWritten |= regBit(reg);
        break;
      }

      case Op::Cpuid:
        insn.regsRead |= regBit(RAX) | regBit(RCX);
        insn.regsWritten |= regBit(RAX) | regBit(RBX) | regBit(RCX) |
                            regBit(RDX);
        break;

      case Op::Rdtsc:
        insn.regsWritten |= regBit(RAX) | regBit(RDX);
        break;

      case Op::Syscall:
        insn.regsRead |= regBit(RAX) | regBit(RDI) | regBit(RSI) |
                         regBit(RDX);
        insn.regsWritten |= regBit(RAX) | regBit(RCX) | regBit(R11);
        break;

      case Op::In:
        insn.regsRead |= regBit(RDX);
        insn.regsWritten |= regBit(RAX);
        break;

      case Op::Out:
        insn.regsRead |= regBit(RAX) | regBit(RDX);
        break;

      case Op::Sse:
        insn.regsRead |= regBit(RegVector) | memAddrRegs(insn);
        insn.regsWritten |= regBit(RegVector);
        if (rmIsMem(insn))
            insn.flags |= kFlagReadsMem;
        break;

      case Op::Fpu:
        insn.regsRead |= regBit(RegX87) | memAddrRegs(insn);
        insn.regsWritten |= regBit(RegX87);
        if (rmIsMem(insn))
            insn.flags |= kFlagReadsMem;
        break;

      case Op::Nop:
        // Hint NOPs may carry a ModRM memory form; no access happens.
        insn.regsRead |= memAddrRegs(insn);
        break;

      default:
        break;
    }

    // Shift-by-CL forms read CL on top of whatever else they do.
    if (sp.flags & kSpecShiftCl)
        insn.regsRead |= regBit(RCX);
    // LOCKed memory RMW also reads memory.
    if (insn.flags & kFlagLock)
        insn.flags |= kFlagReadsMem;
}

} // namespace

Instruction
decode(ByteSpan bytes, Offset off, DecodeMode mode)
{
    if (off >= bytes.size())
        return invalid(off);

    Ctx ctx;
    ctx.bytes = bytes;
    ctx.start = off;
    ctx.cursor = off;
    ctx.mode = mode;

    if (!consumePrefixes(ctx))
        return invalid(off);
    if (!ctx.remaining(1))
        return invalid(off);

    Instruction insn;
    insn.offset = off;

    // Opcode dispatch: VEX escapes, 0F escapes, or the one-byte map.
    const OpSpec *sp = nullptr;
    u8 opcode = ctx.take();
    // 0x62 is the EVEX escape only in 64-bit mode (bound in 32-bit);
    // C4/C5 are VEX escapes in 64-bit mode, but les/lds in 32-bit mode
    // unless the would-be ModRM byte has mod == 3 (the register form
    // les/lds #UDs on — exactly the VEX discriminator hardware uses).
    bool vexEscape = opcode == 0xc4 || opcode == 0xc5;
    if (vexEscape && mode == DecodeMode::X86)
        vexEscape = ctx.remaining(1) && (ctx.peek() & 0xc0) == 0xc0;
    if (opcode == 0x62 && mode == DecodeMode::X64) {
        // EVEX (AVX-512). Four-byte prefix: 62 P0 P1 P2, then the
        // opcode from the map selected by P0[2:0], ModRM operands, and
        // an imm8 for map 3. REX or legacy mandatory prefixes before
        // EVEX are #UD.
        if (ctx.rex || ctx.opSize66 || ctx.rep || ctx.lock)
            return invalid(off);
        if (!ctx.remaining(4))
            return invalid(off);
        u8 p0 = ctx.take();
        u8 p1 = ctx.take();
        ctx.take(); // P2: masking/rounding bits; no length effect.
        u8 map = p0 & 0x07;
        // Maps 1-3 are 0F/0F38/0F3A; 5 and 6 are the FP16 maps.
        if (map != 1 && map != 2 && map != 3 && map != 5 && map != 6)
            return invalid(off);
        if ((p1 & 0x04) == 0)
            return invalid(off); // P1 bit 2 must be set.
        ctx.vex = true;
        insn.isVex = true;
        // Recover the REX-equivalent RXB bits (inverted in P0).
        ctx.rex = static_cast<u8>(0x40 | (((~p0) >> 5) & 7));
        insn.opcodeByte = ctx.take();
        insn.opcodeMap = map;
        static const OpSpec evexM = {Op::Sse, Enc::M, CtrlFlow::None,
                                     0, -1};
        static const OpSpec evexMI8 = {Op::Sse, Enc::MI8,
                                       CtrlFlow::None, 0, -1};
        sp = map == 3 ? &evexMI8 : &evexM;
    } else if (vexEscape) {
        // VEX. REX or mandatory prefixes before VEX are #UD.
        if (ctx.rex || ctx.opSize66 || ctx.rep || ctx.lock)
            return invalid(off);
        ctx.vex = true;
        insn.isVex = true;
        if (opcode == 0xc5) {
            if (!ctx.remaining(1))
                return invalid(off);
            u8 b1 = ctx.take();
            ctx.vexMap = 1;
            ctx.vexPp = b1 & 3;
            ctx.rex = static_cast<u8>(0x40 | (((~b1) >> 5) & 4)); // R
        } else {
            if (!ctx.remaining(2))
                return invalid(off);
            u8 b1 = ctx.take();
            u8 b2 = ctx.take();
            ctx.vexMap = b1 & 0x1f;
            if (ctx.vexMap < 1 || ctx.vexMap > 3)
                return invalid(off);
            ctx.vexPp = b2 & 3;
            ctx.vexW = (b2 & 0x80) != 0;
            // Invert RXB from the VEX byte into REX-equivalent bits.
            ctx.rex = static_cast<u8>(0x40 | (((~b1) >> 5) & 7));
        }
        if (!ctx.remaining(1))
            return invalid(off);
        opcode = ctx.take();
        insn.opcodeByte = opcode;
        insn.opcodeMap = ctx.vexMap;
        static const OpSpec vex0f38 = {Op::Sse, Enc::M, CtrlFlow::None,
                                       0, -1};
        static const OpSpec vex0f3a = {Op::Sse, Enc::MI8, CtrlFlow::None,
                                       0, -1};
        if (ctx.vexMap == 1) {
            sp = &twoByteMap(mode)[opcode];
            // Only data-processing opcodes exist under VEX, plus the
            // AVX-512 mask-register ops (kmov/kand/kortest/...) that
            // reuse 0F-map slots 41-4F, 90-93 and 98-99.
            if (sp->op != Op::Sse && sp->op != Op::Nop) {
                bool maskOp = (opcode >= 0x41 && opcode <= 0x4f) ||
                              (opcode >= 0x90 && opcode <= 0x93) ||
                              opcode == 0x98 || opcode == 0x99;
                if (!maskOp)
                    return invalid(off);
                static const OpSpec vexMask = {Op::Sse, Enc::M,
                                               CtrlFlow::None, 0, -1};
                sp = &vexMask;
            }
        } else if (ctx.vexMap == 2) {
            sp = &vex0f38;
        } else {
            sp = &vex0f3a;
        }
    } else if (opcode == 0x0f) {
        if (!ctx.remaining(1))
            return invalid(off);
        u8 second = ctx.take();
        if (second == 0x38 || second == 0x3a) {
            if (!ctx.remaining(1))
                return invalid(off);
            insn.opcodeByte = ctx.take();
            insn.opcodeMap = second == 0x38 ? 2 : 3;
            static const OpSpec map38 = {Op::Sse, Enc::M, CtrlFlow::None,
                                         kSpecRare, -1};
            static const OpSpec map3a = {Op::Sse, Enc::MI8,
                                         CtrlFlow::None, kSpecRare, -1};
            sp = second == 0x38 ? &map38 : &map3a;
        } else {
            insn.opcodeByte = second;
            insn.opcodeMap = 1;
            sp = &twoByteMap(mode)[second];
            // popcnt/tzcnt/lzcnt require F3; plain 0FB8 is undefined.
            if (second == 0xb8 && ctx.rep != 0xf3)
                return invalid(off);
        }
    } else {
        insn.opcodeByte = opcode;
        insn.opcodeMap = 0;
        sp = &oneByteMap(mode)[opcode];
    }

    if (sp->op == Op::Invalid)
        return invalid(off);

    // Effective operand size.
    bool byteOp = (sp->flags & kSpecByte) != 0;
    u16 flags = sp->flags;
    Enc enc = sp->enc;

    // ModRM-bearing encodings (including all groups).
    if (enc == Enc::M || enc == Enc::MI8 || enc == Enc::MIz ||
        sp->group >= 0) {
        if (!consumeModRm(ctx, insn))
            return invalid(off);
        // bound (32-bit 0x62) requires a memory operand; its mod=3
        // form is the VEX/EVEX discriminator on real hardware.
        if (mode == DecodeMode::X86 && insn.opcodeMap == 0 &&
            insn.opcodeByte == 0x62 && insn.modrmMod == 3)
            return invalid(off);
    }

    // Group refinement after ModRM.
    CtrlFlow flow = sp->flow;
    Op op = sp->op;
    if (sp->group >= 0) {
        // TSX escape hatch: C7 F8 is xbegin rel32, C6 F8 is xabort
        // imm8 (group 11, /7 with a mod=3 rm=0 "register" field).
        if ((sp->group == kGrp11v || sp->group == kGrp11b) &&
            (insn.modrmReg & 7) == 7 && insn.modrmMod == 3 &&
            (insn.modrmRm & 7) == 0) {
            if (sp->group == kGrp11v) {
                insn.op = Op::Xbegin;
                insn.flow = CtrlFlow::CondJump;
                insn.flags |= kFlagRare;
                if (!consumeImm(ctx, insn, ctx.opSize66 ? 2 : 4))
                    return invalid(off);
                insn.length = static_cast<u8>(ctx.cursor - off);
                insn.target = static_cast<s64>(insn.end()) + insn.imm;
                insn.hasTarget = true;
                insn.opSize = modeFacets(ctx.mode).d64Size;
                return insn;
            }
            insn.op = Op::Xabort;
            insn.flags |= kFlagRare;
            if (!consumeImm(ctx, insn, 1))
                return invalid(off);
            insn.length = static_cast<u8>(ctx.cursor - off);
            insn.opSize = 1;
            return insn;
        }
        const OpSpec &sub = groups()[sp->group][insn.modrmReg & 7];
        if (sub.op == Op::Invalid)
            return invalid(off);
        op = sub.op;
        flow = sub.flow;
        flags |= sub.flags;
        if (sub.enc != Enc::None)
            enc = sub.enc;
        byteOp = byteOp || (flags & kSpecByte);
        // Far call/jmp forms require a memory operand.
        if ((sub.flow == CtrlFlow::IndirectCall ||
             sub.flow == CtrlFlow::IndirectJump) &&
            (sub.flags & kSpecRare) && insn.modrmMod == 3)
            return invalid(off);
    }

    insn.op = op;
    insn.flow = flow;
    if (flags & kSpecCond)
        insn.cond = insn.opcodeByte & 0x0f;

    // Operand size. The 64-bit promotions (REX.W/VEX.W and the
    // default-64 push/pop/branch class) do not exist in 32-bit mode,
    // where the ceiling is modeFacets(mode).maxOpSize == 4.
    if (byteOp) {
        insn.opSize = 1;
        insn.flags |= kFlagByteOp;
    } else if (mode == DecodeMode::X64 && ctx.rexW()) {
        insn.opSize = 8;
    } else if (ctx.opSize66) {
        insn.opSize = 2;
    } else if (mode == DecodeMode::X64 && (flags & kSpecD64)) {
        insn.opSize = 8;
    } else {
        insn.opSize = 4;
    }

    // Immediates and relative displacements.
    switch (enc) {
      case Enc::None:
      case Enc::M:
        break;
      case Enc::MI8:
      case Enc::I8:
        if (!consumeImm(ctx, insn, 1))
            return invalid(off);
        break;
      case Enc::MIz:
      case Enc::Iz:
        if (!consumeImm(ctx, insn, insn.opSize == 2 ? 2 : 4))
            return invalid(off);
        break;
      case Enc::I16:
        if (!consumeImm(ctx, insn, 2))
            return invalid(off);
        break;
      case Enc::I16I8: {
        if (!ctx.remaining(3))
            return invalid(off);
        u16 frame = readLe16(ctx.bytes, ctx.cursor);
        ctx.cursor += 2;
        u8 nesting = ctx.take();
        insn.imm = (static_cast<s64>(nesting) << 16) | frame;
        insn.hasImm = true;
        break;
      }
      case Enc::Rel8:
        if (!consumeImm(ctx, insn, 1))
            return invalid(off);
        break;
      case Enc::Rel32:
        if (!consumeImm(ctx, insn, 4))
            return invalid(off);
        break;
      case Enc::OI:
        if (byteOp) {
            if (!consumeImm(ctx, insn, 1))
                return invalid(off);
        } else if (ctx.rexW()) {
            if (!consumeImm(ctx, insn, 8))
                return invalid(off);
        } else if (ctx.opSize66) {
            if (!consumeImm(ctx, insn, 2))
                return invalid(off);
        } else {
            if (!consumeImm(ctx, insn, 4))
                return invalid(off);
        }
        break;
      case Enc::APtr: {
        // Far ptr16:32 (or ptr16:16 with 66h): absolute offset then a
        // 2-byte segment selector. Never a section-relative target.
        int offBytes = ctx.opSize66 ? 2 : 4;
        if (!ctx.remaining(static_cast<u64>(offBytes) + 2))
            return invalid(off);
        insn.imm = offBytes == 2
                       ? static_cast<s64>(readLe16(ctx.bytes, ctx.cursor))
                       : static_cast<s64>(readLe32(ctx.bytes, ctx.cursor));
        ctx.cursor += offBytes;
        insn.disp = static_cast<s64>(readLe16(ctx.bytes, ctx.cursor));
        ctx.cursor += 2;
        insn.hasImm = true;
        break;
      }
      case Enc::MOffs: {
        int addrBytes = ctx.mode == DecodeMode::X86
                            ? (ctx.addrSize67 ? 2 : 4)
                            : (ctx.addrSize67 ? 4 : 8);
        if (!ctx.remaining(static_cast<u64>(addrBytes)))
            return invalid(off);
        if (addrBytes == 8)
            insn.disp = static_cast<s64>(readLe64(ctx.bytes, ctx.cursor));
        else if (addrBytes == 4)
            insn.disp = static_cast<s64>(readLe32(ctx.bytes, ctx.cursor));
        else
            insn.disp = static_cast<s64>(readLe16(ctx.bytes, ctx.cursor));
        ctx.cursor += addrBytes;
        break;
      }
    }

    insn.length = static_cast<u8>(ctx.cursor - off);
    assert(insn.length <= kMaxInsnLen);

    // Direct branch target (section-relative, possibly out of range).
    if (enc == Enc::Rel8 || enc == Enc::Rel32) {
        insn.target = static_cast<s64>(insn.end()) + insn.imm;
        insn.hasTarget = true;
    }

    // Prefix legality and oddity flags.
    if (ctx.lock) {
        insn.flags |= kFlagLock;
        bool lockable = (flags & kSpecLockable) && rmIsMem(insn);
        if (!lockable) {
            // LOCK on anything else raises #UD: a true invalid decode.
            return invalid(off);
        }
    }
    if (ctx.rep)
        insn.flags |= kFlagRep;
    if (ctx.segCount > 0)
        insn.flags |= kFlagSegment;
    if (ctx.redundant || ctx.segCount > 1 || ctx.rexStale)
        insn.flags |= kFlagRedundantPrefix;
    if (ctx.opSize66 && byteOp)
        insn.flags |= kFlagRedundantPrefix;
    if (flags & kSpecRare)
        insn.flags |= kFlagRare;
    if (flags & kSpecPriv)
        insn.flags |= kFlagPrivileged;
    if (ctx.rep && insn.opcodeMap == 1)
        insn.mandatoryPrefix = ctx.rep;
    else if (ctx.opSize66 && insn.opcodeMap >= 1)
        insn.mandatoryPrefix = 0x66;

    applySemantics(ctx, insn, *sp);
    // Group-refined shift-by-CL also reads CL (parent carries flag).
    if (flags & kSpecShiftCl)
        insn.regsRead |= regBit(RCX);
    // REP-prefixed string ops additionally use RCX as the counter.
    if (ctx.rep &&
        (insn.op == Op::Movs || insn.op == Op::Cmps ||
         insn.op == Op::Stos || insn.op == Op::Lods ||
         insn.op == Op::Scas)) {
        insn.regsRead |= regBit(RCX);
        insn.regsWritten |= regBit(RCX);
    }

    return insn;
}

} // namespace accdis::x86
