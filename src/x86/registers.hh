/**
 * @file
 * Register identifiers and def/use bitmask helpers for x86-64.
 *
 * The analyses only need a coarse register model: the 16 general
 * purpose registers, the flags register, and "some vector register" /
 * "some x87 register" as single aggregate resources.
 */

#ifndef ACCDIS_X86_REGISTERS_HH
#define ACCDIS_X86_REGISTERS_HH

#include <string>

#include "support/types.hh"

namespace accdis::x86
{

/** General purpose register numbers (hardware encoding order). */
enum Reg : u8
{
    RAX = 0, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
    R8, R9, R10, R11, R12, R13, R14, R15,
    NumGpr = 16,
};

/** Bit positions beyond the GPRs in a RegMask. */
enum PseudoReg : u8
{
    RegFlags = 16,  ///< RFLAGS as a single resource.
    RegVector = 17, ///< Any XMM/YMM register (aggregate).
    RegX87 = 18,    ///< Any x87/MMX register (aggregate).
};

/** Bitmask over Reg and PseudoReg positions. */
using RegMask = u32;

/** Mask with a single register bit set. */
constexpr RegMask
regBit(u8 reg)
{
    return RegMask{1} << reg;
}

/** Mask of all 16 GPRs. */
inline constexpr RegMask kAllGprs = (RegMask{1} << NumGpr) - 1;

/** Mask of the System V callee-saved GPRs (rbx, rbp, r12-r15). */
inline constexpr RegMask kCalleeSaved =
    regBit(RBX) | regBit(RBP) | regBit(R12) | regBit(R13) | regBit(R14) |
    regBit(R15);

/** Mask of System V argument registers (rdi, rsi, rdx, rcx, r8, r9). */
inline constexpr RegMask kArgRegs =
    regBit(RDI) | regBit(RSI) | regBit(RDX) | regBit(RCX) | regBit(R8) |
    regBit(R9);

/** 64-bit register name for a GPR number. */
std::string regName(u8 reg);

/** Register name honoring an operand size of 1, 2, 4 or 8 bytes. */
std::string regName(u8 reg, int size);

} // namespace accdis::x86

#endif // ACCDIS_X86_REGISTERS_HH
