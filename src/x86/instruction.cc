#include "x86/instruction.hh"

namespace accdis::x86
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Invalid: return "(bad)";
      case Op::Add: return "add";
      case Op::Or: return "or";
      case Op::Adc: return "adc";
      case Op::Sbb: return "sbb";
      case Op::And: return "and";
      case Op::Sub: return "sub";
      case Op::Xor: return "xor";
      case Op::Cmp: return "cmp";
      case Op::Mov: return "mov";
      case Op::Movsxd: return "movsxd";
      case Op::Movzx: return "movzx";
      case Op::Movsx: return "movsx";
      case Op::Lea: return "lea";
      case Op::Xchg: return "xchg";
      case Op::Push: return "push";
      case Op::Pop: return "pop";
      case Op::Bswap: return "bswap";
      case Op::Xadd: return "xadd";
      case Op::Cmpxchg: return "cmpxchg";
      case Op::Movnti: return "movnti";
      case Op::Rol: return "rol";
      case Op::Ror: return "ror";
      case Op::Rcl: return "rcl";
      case Op::Rcr: return "rcr";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sal: return "sal";
      case Op::Sar: return "sar";
      case Op::Shld: return "shld";
      case Op::Shrd: return "shrd";
      case Op::Test: return "test";
      case Op::Not: return "not";
      case Op::Neg: return "neg";
      case Op::Mul: return "mul";
      case Op::Imul: return "imul";
      case Op::Div: return "div";
      case Op::Idiv: return "idiv";
      case Op::Inc: return "inc";
      case Op::Dec: return "dec";
      case Op::Bt: return "bt";
      case Op::Bts: return "bts";
      case Op::Btr: return "btr";
      case Op::Btc: return "btc";
      case Op::Bsf: return "bsf";
      case Op::Bsr: return "bsr";
      case Op::Popcnt: return "popcnt";
      case Op::Jmp: return "jmp";
      case Op::Jcc: return "j";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::Retf: return "retf";
      case Op::Iret: return "iret";
      case Op::Int3: return "int3";
      case Op::Int: return "int";
      case Op::Into: return "into";
      case Op::Syscall: return "syscall";
      case Op::Sysret: return "sysret";
      case Op::Loop: return "loop";
      case Op::Loope: return "loope";
      case Op::Loopne: return "loopne";
      case Op::Jrcxz: return "jrcxz";
      case Op::Ud2: return "ud2";
      case Op::Hlt: return "hlt";
      case Op::Enter: return "enter";
      case Op::Leave: return "leave";
      case Op::Setcc: return "set";
      case Op::Cmovcc: return "cmov";
      case Op::Movs: return "movs";
      case Op::Cmps: return "cmps";
      case Op::Stos: return "stos";
      case Op::Lods: return "lods";
      case Op::Scas: return "scas";
      case Op::Ins: return "ins";
      case Op::Outs: return "outs";
      case Op::Xlat: return "xlat";
      case Op::Nop: return "nop";
      case Op::Cwde: return "cwde";
      case Op::Cdq: return "cdq";
      case Op::Fwait: return "fwait";
      case Op::Pushf: return "pushf";
      case Op::Popf: return "popf";
      case Op::Sahf: return "sahf";
      case Op::Lahf: return "lahf";
      case Op::Cmc: return "cmc";
      case Op::Clc: return "clc";
      case Op::Stc: return "stc";
      case Op::Cli: return "cli";
      case Op::Sti: return "sti";
      case Op::Cld: return "cld";
      case Op::Std: return "std";
      case Op::Cpuid: return "cpuid";
      case Op::Rdtsc: return "rdtsc";
      case Op::In: return "in";
      case Op::Out: return "out";
      case Op::Xbegin: return "xbegin";
      case Op::Xabort: return "xabort";
      case Op::Fpu: return "fpu";
      case Op::Sse: return "sse";
      case Op::Sys: return "sys";
      default: return "?";
    }
}

const char *
condName(u8 cond)
{
    static const char *const names[16] = {
        "o", "no", "b", "ae", "e", "ne", "be", "a",
        "s", "ns", "p", "np", "l", "ge", "le", "g",
    };
    return names[cond & 0x0f];
}

} // namespace accdis::x86
