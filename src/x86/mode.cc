#include "x86/mode.hh"

#include <cstring>

namespace accdis::x86
{

bool
decodeModeFromName(const char *name, DecodeMode &out)
{
    if (!name)
        return false;
    if (!std::strcmp(name, "x64") || !std::strcmp(name, "x86-64") ||
        !std::strcmp(name, "x86_64") || !std::strcmp(name, "amd64") ||
        !std::strcmp(name, "64")) {
        out = DecodeMode::X64;
        return true;
    }
    if (!std::strcmp(name, "x86") || !std::strcmp(name, "x86-32") ||
        !std::strcmp(name, "i386") || !std::strcmp(name, "ia32") ||
        !std::strcmp(name, "32")) {
        out = DecodeMode::X86;
        return true;
    }
    return false;
}

} // namespace accdis::x86
