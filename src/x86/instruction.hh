/**
 * @file
 * The decoded-instruction model shared by the whole pipeline.
 */

#ifndef ACCDIS_X86_INSTRUCTION_HH
#define ACCDIS_X86_INSTRUCTION_HH

#include "support/types.hh"
#include "x86/registers.hh"

namespace accdis::x86
{

/** Mnemonic identity of a decoded instruction. */
enum class Op : u8
{
    Invalid = 0,
    // Binary ALU (grp1 order matters: add or adc sbb and sub xor cmp).
    Add, Or, Adc, Sbb, And, Sub, Xor, Cmp,
    // Data movement.
    Mov, Movsxd, Movzx, Movsx, Lea, Xchg, Push, Pop, Bswap, Xadd,
    Cmpxchg, Movnti,
    // Shifts / rotates (grp2 order: rol ror rcl rcr shl shr sal sar).
    Rol, Ror, Rcl, Rcr, Shl, Shr, Sal, Sar, Shld, Shrd,
    // Unary grp3/4/5.
    Test, Not, Neg, Mul, Imul, Div, Idiv, Inc, Dec,
    // Bit ops.
    Bt, Bts, Btr, Btc, Bsf, Bsr, Popcnt,
    // Control flow.
    Jmp, Jcc, Call, Ret, Retf, Iret, Int3, Int, Into, Syscall, Sysret,
    Loop, Loope, Loopne, Jrcxz, Ud2, Hlt, Enter, Leave,
    // Conditionals.
    Setcc, Cmovcc,
    // String ops.
    Movs, Cmps, Stos, Lods, Scas, Ins, Outs, Xlat,
    // Flag / misc.
    Nop, Cwde, Cdq, Fwait, Pushf, Popf, Sahf, Lahf, Cmc, Clc, Stc, Cli,
    Sti, Cld, Std, Cpuid, Rdtsc, In, Out,
    // Transactional memory.
    Xbegin, Xabort,
    // Aggregate classes.
    Fpu,     ///< Any x87 D8-DF instruction.
    Sse,     ///< Any MMX/SSE/AVX data instruction.
    Sys,     ///< Privileged/system instruction (lgdt, wrmsr, ...).
    NumOps,
};

/** Control-flow behavior of an instruction. */
enum class CtrlFlow : u8
{
    None,         ///< Falls through only.
    Jump,         ///< Direct unconditional jump (rel8/rel32).
    CondJump,     ///< Direct conditional jump; target + fallthrough.
    Call,         ///< Direct call (rel32); target + fallthrough.
    IndirectJump, ///< jmp r/m; unknown target, no fallthrough.
    IndirectCall, ///< call r/m; unknown target, falls through.
    Return,       ///< ret/retf/iret; no fallthrough.
    Interrupt,    ///< int/int3/syscall; treated as no-return boundary.
    Halt,         ///< hlt/ud2; no fallthrough.
};

/** Behavioral oddity flags used as static-analysis features. */
enum InsnFlag : u16
{
    kFlagNone = 0,
    kFlagRare = 1 << 0,       ///< Legal but essentially never emitted.
    kFlagPrivileged = 1 << 1, ///< Faults in user mode.
    kFlagLock = 1 << 2,       ///< LOCK prefix present.
    kFlagRep = 1 << 3,        ///< REP/REPNE prefix present.
    kFlagSegment = 1 << 4,    ///< Segment-override prefix present.
    kFlagRedundantPrefix = 1 << 5, ///< Duplicated/ignored prefixes.
    kFlagLockInvalid = 1 << 6, ///< LOCK on a non-lockable instruction.
    kFlagReadsMem = 1 << 7,
    kFlagWritesMem = 1 << 8,
    kFlagRipRelative = 1 << 9, ///< RIP-relative memory operand.
    kFlagHasModRm = 1 << 10,
    kFlagByteOp = 1 << 11,     ///< 8-bit operand size.
};

/**
 * One decoded x86-64 instruction. Offsets are section-relative; the
 * branch target (when the instruction has a direct one) is stored as a
 * section-relative offset too, computed by the decoder from the
 * relative displacement, and may point outside the section (recorded
 * as-is so analyses can penalize escaping flow).
 */
struct Instruction
{
    Offset offset = 0;     ///< Start offset within the section.
    u8 length = 0;         ///< Total encoded length in bytes.
    Op op = Op::Invalid;
    CtrlFlow flow = CtrlFlow::None;
    u16 flags = kFlagNone;
    u8 cond = 0;           ///< Condition code for Jcc/Setcc/Cmovcc.
    u8 opSize = 4;         ///< Operand size in bytes (1/2/4/8).
    u8 opcodeByte = 0;     ///< Last opcode byte.
    u8 opReg = 0xff;       ///< Opcode-embedded register (REX.B
                           ///< applied) for push/pop/mov-imm/xchg/
                           ///< bswap forms; 0xff when absent.
    u8 opcodeMap = 0;      ///< 0 = one-byte, 1 = 0F, 2 = 0F38, 3 = 0F3A.
    u8 mandatoryPrefix = 0; ///< 0, 0x66, 0xf2 or 0xf3 (SSE selection).
    bool isVex = false;    ///< Encoded with a VEX prefix (C4/C5).

    // Operand detail (valid depending on encoding).
    bool hasModRm = false;
    u8 modrmMod = 0;
    u8 modrmReg = 0;       ///< With REX.R applied.
    u8 modrmRm = 0;        ///< With REX.B applied (register case).
    bool hasSib = false;
    u8 sibBase = 0xff;     ///< 0xff = none.
    u8 sibIndex = 0xff;    ///< 0xff = none.
    u8 sibScale = 0;
    bool ripRelative = false;
    s64 disp = 0;          ///< Memory displacement.
    s64 imm = 0;           ///< Immediate value (sign-extended).
    bool hasImm = false;

    /**
     * Direct branch target as a signed section-relative offset
     * (next-instruction offset + displacement). Only meaningful for
     * Jump/CondJump/Call flow.
     */
    s64 target = 0;
    bool hasTarget = false;

    // Def/use summary.
    RegMask regsRead = 0;
    RegMask regsWritten = 0;

    /** True when decode succeeded. */
    bool valid() const { return op != Op::Invalid && length > 0; }

    /** Offset of the byte following this instruction. */
    Offset end() const { return offset + length; }

    /** True for any flow that can transfer to a direct target. */
    bool
    hasDirectTarget() const
    {
        return hasTarget &&
               (flow == CtrlFlow::Jump || flow == CtrlFlow::CondJump ||
                flow == CtrlFlow::Call);
    }

    /** True when execution can continue at end(). */
    bool
    fallsThrough() const
    {
        switch (flow) {
          case CtrlFlow::None:
          case CtrlFlow::CondJump:
          case CtrlFlow::Call:
          case CtrlFlow::IndirectCall:
            return true;
          default:
            return false;
        }
    }
};

/** Short lowercase mnemonic for an Op (formatter and tests). */
const char *opName(Op op);

/** Condition-code suffix ("o", "no", "b", ... ) for cond 0-15. */
const char *condName(u8 cond);

} // namespace accdis::x86

#endif // ACCDIS_X86_INSTRUCTION_HH
