#include "x86/formatter.hh"

#include <cstdio>

#include "x86/opcode_table.hh"

namespace accdis::x86
{

namespace
{

std::string
hexImm(s64 value)
{
    char buf[32];
    if (value < 0)
        std::snprintf(buf, sizeof(buf), "-0x%llx",
                      static_cast<unsigned long long>(-value));
    else
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(value));
    return buf;
}

/** Resolve the common SSE mnemonics by (mandatory prefix, opcode). */
const char *
sseName(const Instruction &insn)
{
    if (insn.opcodeMap != 1)
        return nullptr;
    u8 p = insn.mandatoryPrefix;
    switch (insn.opcodeByte) {
      case 0x10:
        return p == 0xf3 ? "movss" : p == 0xf2 ? "movsd"
               : p == 0x66 ? "movupd" : "movups";
      case 0x11:
        return p == 0xf3 ? "movss" : p == 0xf2 ? "movsd"
               : p == 0x66 ? "movupd" : "movups";
      case 0x28: case 0x29:
        return p == 0x66 ? "movapd" : "movaps";
      case 0x2a: return "cvtsi2s";
      case 0x2c: return "cvttss2si";
      case 0x2e: return p == 0x66 ? "ucomisd" : "ucomiss";
      case 0x2f: return p == 0x66 ? "comisd" : "comiss";
      case 0x51: return "sqrt";
      case 0x54: return p == 0x66 ? "andpd" : "andps";
      case 0x57: return p == 0x66 ? "xorpd" : "xorps";
      case 0x58: return "adds";
      case 0x59: return "muls";
      case 0x5c: return "subs";
      case 0x5e: return "divs";
      case 0x6e: return "movd";
      case 0x6f:
        return p == 0xf3 ? "movdqu" : p == 0x66 ? "movdqa" : "movq";
      case 0x70: return "pshuf";
      case 0x7e: return p == 0xf3 ? "movq" : "movd";
      case 0x7f:
        return p == 0xf3 ? "movdqu" : p == 0x66 ? "movdqa" : "movq";
      case 0xd6: return "movq";
      case 0xef: return "pxor";
      default: return nullptr;
    }
}

std::string
memOperand(const Instruction &insn)
{
    std::string out = "[";
    bool needPlus = false;
    if (insn.ripRelative) {
        out += "rip";
        needPlus = true;
    } else {
        if (insn.sibBase != 0xff) {
            out += regName(insn.sibBase, 8);
            needPlus = true;
        }
        if (insn.hasSib && insn.sibIndex != 0xff) {
            if (needPlus)
                out += "+";
            out += regName(insn.sibIndex, 8);
            out += "*";
            out += std::to_string(1 << insn.sibScale);
            needPlus = true;
        }
    }
    if (insn.disp != 0 || !needPlus) {
        if (needPlus && insn.disp >= 0)
            out += "+";
        out += hexImm(insn.disp);
    }
    out += "]";
    return out;
}

std::string
rmOperand(const Instruction &insn, int size)
{
    if (insn.modrmMod == 3)
        return regName(insn.modrmRm, size);
    return memOperand(insn);
}

} // namespace

std::string
formatMnemonic(const Instruction &insn)
{
    if (!insn.valid())
        return "(bad)";
    switch (insn.op) {
      case Op::Jcc:
        return std::string("j") + condName(insn.cond);
      case Op::Setcc:
        return std::string("set") + condName(insn.cond);
      case Op::Cmovcc:
        return std::string("cmov") + condName(insn.cond);
      case Op::Nop:
        if (insn.opcodeMap == 1 && insn.opcodeByte == 0x1e &&
            insn.mandatoryPrefix == 0xf3)
            return "endbr64";
        return "nop";
      case Op::Sse: {
        if (const char *name = sseName(insn))
            return name;
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%s_%02x",
                      insn.isVex ? "vex" : "sse", insn.opcodeByte);
        return buf;
      }
      case Op::Fpu: {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "fpu_%02x", insn.opcodeByte);
        return buf;
      }
      case Op::Sys: {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "sys_%02x", insn.opcodeByte);
        return buf;
      }
      default:
        return opName(insn.op);
    }
}

std::string
format(const Instruction &insn)
{
    if (!insn.valid())
        return "(bad)";

    std::string out;
    if (insn.flags & kFlagLock)
        out += "lock ";
    if ((insn.flags & kFlagRep) && insn.opcodeMap == 0)
        out += "rep ";
    out += formatMnemonic(insn);

    const int size = insn.opSize;
    auto addOperand = [&](const std::string &text) {
        out += out.find(' ') == std::string::npos &&
                       out.find(',') == std::string::npos
                   ? " "
                   : ", ";
        // The lambda above misfires once a mnemonic contains a space;
        // simpler: track explicitly below.
        out += text;
    };
    (void)addOperand;

    std::string ops;
    auto push = [&](const std::string &text) {
        if (!ops.empty())
            ops += ", ";
        ops += text;
    };

    switch (insn.flow) {
      case CtrlFlow::Jump:
      case CtrlFlow::CondJump:
      case CtrlFlow::Call:
        if (insn.hasTarget) {
            push(hexImm(insn.target));
            out += " " + ops;
            return out;
        }
        break;
      default:
        break;
    }

    bool regIsDest =
        insn.opcodeMap == 0 ? (insn.opcodeByte & 0x02) != 0
                            : true;
    // Ops whose ModRM form is always reg <- r/m regardless of the
    // direction bit convention.
    switch (insn.op) {
      case Op::Lea:
      case Op::Movsxd:
      case Op::Movzx:
      case Op::Movsx:
      case Op::Imul:
      case Op::Bsf:
      case Op::Bsr:
      case Op::Popcnt:
      case Op::Cmovcc:
        regIsDest = true;
        break;
      default:
        break;
    }

    if (insn.hasModRm) {
        bool groupForm =
            insn.opcodeMap == 0 &&
            (insn.opcodeByte == 0x80 || insn.opcodeByte == 0x81 ||
             insn.opcodeByte == 0x83 || insn.opcodeByte == 0xc0 ||
             insn.opcodeByte == 0xc1 || insn.opcodeByte == 0xc6 ||
             insn.opcodeByte == 0xc7 || insn.opcodeByte == 0xf6 ||
             insn.opcodeByte == 0xf7 || insn.opcodeByte == 0xfe ||
             insn.opcodeByte == 0xff ||
             (insn.opcodeByte >= 0xd0 && insn.opcodeByte <= 0xd3) ||
             insn.opcodeByte == 0x8f);
        if (insn.op == Op::Nop && insn.opcodeMap == 1 &&
            insn.opcodeByte == 0x1e && insn.mandatoryPrefix == 0xf3) {
            // endbr64/endbr32 take no printable operands.
        } else if (groupForm || insn.op == Op::Setcc) {
            push(rmOperand(insn, size));
        } else if (insn.op == Op::Sse || insn.op == Op::Fpu ||
                   insn.op == Op::Sys || insn.op == Op::Nop) {
            push(rmOperand(insn, size));
        } else if (regIsDest) {
            // Widening moves read a narrower r/m than they write.
            int rmSize = size;
            if (insn.op == Op::Movsxd) {
                rmSize = 4;
            } else if (insn.op == Op::Movzx || insn.op == Op::Movsx) {
                rmSize = (insn.opcodeByte == 0xb6 ||
                          insn.opcodeByte == 0xbe)
                             ? 1
                             : 2;
            }
            push(regName(insn.modrmReg, size));
            push(rmOperand(insn, rmSize));
        } else {
            push(rmOperand(insn, size));
            push(regName(insn.modrmReg, size));
        }
    } else if (insn.opcodeMap == 0) {
        // Implicit register forms.
        if (insn.opReg != 0xff) {
            // xchg 91-97 swaps with the accumulator.
            if (insn.op == Op::Xchg)
                push(regName(RAX, size));
            push(regName(insn.opReg, size));
        } else if (insn.hasImm &&
                   (insn.op == Op::Add || insn.op == Op::Or ||
                    insn.op == Op::Adc || insn.op == Op::Sbb ||
                    insn.op == Op::And || insn.op == Op::Sub ||
                    insn.op == Op::Xor || insn.op == Op::Cmp ||
                    insn.op == Op::Test)) {
            push(regName(RAX, size));
        }
    } else if (insn.opcodeMap == 1 && insn.op == Op::Bswap) {
        push(regName(insn.opReg != 0xff ? insn.opReg
                                        : (insn.opcodeByte & 7),
                     size));
    }

    if (insn.hasImm && insn.op != Op::Jcc && insn.op != Op::Jmp &&
        insn.op != Op::Call)
        push(hexImm(insn.imm));

    if (!ops.empty())
        out += " " + ops;
    return out;
}

} // namespace accdis::x86
