#include "x86/registers.hh"

namespace accdis::x86
{

namespace
{

const char *const kNames64[16] = {
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
};

const char *const kNames32[16] = {
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
};

const char *const kNames16[16] = {
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
};

const char *const kNames8[16] = {
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
};

} // namespace

std::string
regName(u8 reg)
{
    return regName(reg, 8);
}

std::string
regName(u8 reg, int size)
{
    if (reg >= NumGpr) {
        if (reg == RegFlags)
            return "rflags";
        if (reg == RegVector)
            return "xmm";
        return "st";
    }
    switch (size) {
      case 1:
        return kNames8[reg];
      case 2:
        return kNames16[reg];
      case 4:
        return kNames32[reg];
      default:
        return kNames64[reg];
    }
}

} // namespace accdis::x86
