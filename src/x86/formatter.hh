/**
 * @file
 * Intel-syntax text rendering of decoded instructions.
 */

#ifndef ACCDIS_X86_FORMATTER_HH
#define ACCDIS_X86_FORMATTER_HH

#include <string>

#include "x86/instruction.hh"

namespace accdis::x86
{

/**
 * Render an instruction in approximate Intel syntax. Operand coverage
 * is coarse for the aggregate Sse/Fpu/Sys classes (common mnemonics
 * are resolved, the rest print their opcode byte), exact for the
 * integer/control-flow subset the analyses reason about.
 */
std::string format(const Instruction &insn);

/** Render the mnemonic only (including condition-code suffixes). */
std::string formatMnemonic(const Instruction &insn);

} // namespace accdis::x86

#endif // ACCDIS_X86_FORMATTER_HH
