#include "x86/opcode_table.hh"

namespace accdis::x86
{

namespace
{

using Map = std::array<OpSpec, 256>;
using GroupTable = std::array<std::array<OpSpec, 8>, kNumGroups>;

OpSpec
spec(Op op, Enc enc, u16 flags = 0, CtrlFlow flow = CtrlFlow::None)
{
    OpSpec s;
    s.op = op;
    s.enc = enc;
    s.flow = flow;
    s.flags = flags;
    return s;
}

OpSpec
groupSpec(s8 gid, Enc enc, u16 flags = 0)
{
    OpSpec s;
    s.op = Op::Nop; // placeholder; the group entry decides.
    s.enc = enc;
    s.flags = flags;
    s.group = gid;
    return s;
}

/**
 * Fill the six ModRM forms of a classic ALU opcode block starting at
 * @p base: Eb,Gb / Ev,Gv / Gb,Eb / Gv,Ev / AL,imm8 / eAX,immz.
 */
void
fillAluBlock(Map &map, u8 base, Op op, bool lockable)
{
    u16 lock = lockable ? kSpecLockable : 0;
    map[base + 0] = spec(op, Enc::M, kSpecByte | lock);
    map[base + 1] = spec(op, Enc::M, lock);
    map[base + 2] = spec(op, Enc::M, kSpecByte);
    map[base + 3] = spec(op, Enc::M);
    map[base + 4] = spec(op, Enc::I8, kSpecByte);
    map[base + 5] = spec(op, Enc::Iz);
}

Map
buildOneByteMap()
{
    Map map{}; // All entries default to Op::Invalid.

    fillAluBlock(map, 0x00, Op::Add, true);
    fillAluBlock(map, 0x08, Op::Or, true);
    fillAluBlock(map, 0x10, Op::Adc, true);
    fillAluBlock(map, 0x18, Op::Sbb, true);
    fillAluBlock(map, 0x20, Op::And, true);
    fillAluBlock(map, 0x28, Op::Sub, true);
    fillAluBlock(map, 0x30, Op::Xor, true);
    fillAluBlock(map, 0x38, Op::Cmp, false);
    // 06,07,0E,16,17,1E,1F,27,2F,37,3F: push/pop seg and BCD ops —
    // invalid in 64-bit mode; left Invalid.

    // 40-4F are REX prefixes in 64-bit mode: handled by the decoder's
    // prefix loop, never reach table dispatch. Left Invalid.

    for (u8 r = 0; r < 8; ++r) {
        map[0x50 + r] = spec(Op::Push, Enc::None, kSpecD64);
        map[0x58 + r] = spec(Op::Pop, Enc::None, kSpecD64);
    }

    map[0x63] = spec(Op::Movsxd, Enc::M);
    map[0x68] = spec(Op::Push, Enc::Iz, kSpecD64);
    map[0x69] = spec(Op::Imul, Enc::MIz);
    map[0x6a] = spec(Op::Push, Enc::I8, kSpecD64);
    map[0x6b] = spec(Op::Imul, Enc::MI8);
    map[0x6c] = spec(Op::Ins, Enc::None, kSpecByte | kSpecPriv);
    map[0x6d] = spec(Op::Ins, Enc::None, kSpecPriv);
    map[0x6e] = spec(Op::Outs, Enc::None, kSpecByte | kSpecPriv);
    map[0x6f] = spec(Op::Outs, Enc::None, kSpecPriv);

    for (u8 cc = 0; cc < 16; ++cc) {
        map[0x70 + cc] =
            spec(Op::Jcc, Enc::Rel8, kSpecCond, CtrlFlow::CondJump);
    }

    map[0x80] = groupSpec(kGrp1, Enc::MI8, kSpecByte);
    map[0x81] = groupSpec(kGrp1, Enc::MIz);
    // 0x82 is invalid in 64-bit mode.
    map[0x83] = groupSpec(kGrp1, Enc::MI8);
    map[0x84] = spec(Op::Test, Enc::M, kSpecByte);
    map[0x85] = spec(Op::Test, Enc::M);
    map[0x86] = spec(Op::Xchg, Enc::M, kSpecByte | kSpecLockable);
    map[0x87] = spec(Op::Xchg, Enc::M, kSpecLockable);
    map[0x88] = spec(Op::Mov, Enc::M, kSpecByte);
    map[0x89] = spec(Op::Mov, Enc::M);
    map[0x8a] = spec(Op::Mov, Enc::M, kSpecByte);
    map[0x8b] = spec(Op::Mov, Enc::M);
    map[0x8c] = spec(Op::Mov, Enc::M, kSpecRare); // mov r/m, sreg
    map[0x8d] = spec(Op::Lea, Enc::M);
    map[0x8e] = spec(Op::Mov, Enc::M, kSpecRare); // mov sreg, r/m
    map[0x8f] = groupSpec(kGrp1A, Enc::M, kSpecD64);

    map[0x90] = spec(Op::Nop, Enc::None);
    for (u8 r = 1; r < 8; ++r)
        map[0x90 + r] = spec(Op::Xchg, Enc::None);
    map[0x98] = spec(Op::Cwde, Enc::None);
    map[0x99] = spec(Op::Cdq, Enc::None);
    // 0x9A call far: invalid in 64-bit mode.
    map[0x9b] = spec(Op::Fwait, Enc::None, kSpecRare);
    map[0x9c] = spec(Op::Pushf, Enc::None, kSpecD64);
    map[0x9d] = spec(Op::Popf, Enc::None, kSpecD64);
    map[0x9e] = spec(Op::Sahf, Enc::None, kSpecRare);
    map[0x9f] = spec(Op::Lahf, Enc::None, kSpecRare);

    map[0xa0] = spec(Op::Mov, Enc::MOffs, kSpecByte | kSpecRare);
    map[0xa1] = spec(Op::Mov, Enc::MOffs, kSpecRare);
    map[0xa2] = spec(Op::Mov, Enc::MOffs, kSpecByte | kSpecRare);
    map[0xa3] = spec(Op::Mov, Enc::MOffs, kSpecRare);
    map[0xa4] = spec(Op::Movs, Enc::None, kSpecByte);
    map[0xa5] = spec(Op::Movs, Enc::None);
    map[0xa6] = spec(Op::Cmps, Enc::None, kSpecByte);
    map[0xa7] = spec(Op::Cmps, Enc::None);
    map[0xa8] = spec(Op::Test, Enc::I8, kSpecByte);
    map[0xa9] = spec(Op::Test, Enc::Iz);
    map[0xaa] = spec(Op::Stos, Enc::None, kSpecByte);
    map[0xab] = spec(Op::Stos, Enc::None);
    map[0xac] = spec(Op::Lods, Enc::None, kSpecByte);
    map[0xad] = spec(Op::Lods, Enc::None);
    map[0xae] = spec(Op::Scas, Enc::None, kSpecByte);
    map[0xaf] = spec(Op::Scas, Enc::None);

    for (u8 r = 0; r < 8; ++r) {
        map[0xb0 + r] = spec(Op::Mov, Enc::OI, kSpecByte);
        map[0xb8 + r] = spec(Op::Mov, Enc::OI);
    }

    map[0xc0] = groupSpec(kGrp2, Enc::MI8, kSpecByte);
    map[0xc1] = groupSpec(kGrp2, Enc::MI8);
    map[0xc2] = spec(Op::Ret, Enc::I16, kSpecD64, CtrlFlow::Return);
    map[0xc3] = spec(Op::Ret, Enc::None, kSpecD64, CtrlFlow::Return);
    // C4/C5 are VEX escapes in 64-bit mode: handled by the decoder.
    map[0xc6] = groupSpec(kGrp11b, Enc::MI8, kSpecByte);
    map[0xc7] = groupSpec(kGrp11v, Enc::MIz);
    map[0xc8] = spec(Op::Enter, Enc::I16I8, kSpecRare);
    map[0xc9] = spec(Op::Leave, Enc::None, kSpecD64);
    map[0xca] = spec(Op::Retf, Enc::I16, kSpecRare, CtrlFlow::Return);
    map[0xcb] = spec(Op::Retf, Enc::None, kSpecRare, CtrlFlow::Return);
    map[0xcc] = spec(Op::Int3, Enc::None, 0, CtrlFlow::Interrupt);
    map[0xcd] = spec(Op::Int, Enc::I8, kSpecRare, CtrlFlow::Interrupt);
    // CE (into) invalid in 64-bit mode.
    map[0xcf] = spec(Op::Iret, Enc::None, kSpecPriv, CtrlFlow::Return);

    map[0xd0] = groupSpec(kGrp2, Enc::M, kSpecByte | kSpecShift1);
    map[0xd1] = groupSpec(kGrp2, Enc::M, kSpecShift1);
    map[0xd2] = groupSpec(kGrp2, Enc::M, kSpecByte | kSpecShiftCl);
    map[0xd3] = groupSpec(kGrp2, Enc::M, kSpecShiftCl);
    // D4 (aam), D5 (aad), D6 invalid in 64-bit mode.
    map[0xd7] = spec(Op::Xlat, Enc::None, kSpecRare);
    for (u8 b = 0xd8; b >= 0xd8 && b <= 0xdf; ++b)
        map[b] = spec(Op::Fpu, Enc::M, kSpecRare);

    map[0xe0] = spec(Op::Loopne, Enc::Rel8, kSpecRare,
                     CtrlFlow::CondJump);
    map[0xe1] = spec(Op::Loope, Enc::Rel8, kSpecRare, CtrlFlow::CondJump);
    map[0xe2] = spec(Op::Loop, Enc::Rel8, kSpecRare, CtrlFlow::CondJump);
    map[0xe3] = spec(Op::Jrcxz, Enc::Rel8, kSpecRare, CtrlFlow::CondJump);
    map[0xe4] = spec(Op::In, Enc::I8, kSpecByte | kSpecPriv);
    map[0xe5] = spec(Op::In, Enc::I8, kSpecPriv);
    map[0xe6] = spec(Op::Out, Enc::I8, kSpecByte | kSpecPriv);
    map[0xe7] = spec(Op::Out, Enc::I8, kSpecPriv);
    map[0xe8] = spec(Op::Call, Enc::Rel32, kSpecD64, CtrlFlow::Call);
    map[0xe9] = spec(Op::Jmp, Enc::Rel32, kSpecD64, CtrlFlow::Jump);
    // EA jmp far: invalid in 64-bit mode.
    map[0xeb] = spec(Op::Jmp, Enc::Rel8, kSpecD64, CtrlFlow::Jump);
    map[0xec] = spec(Op::In, Enc::None, kSpecByte | kSpecPriv);
    map[0xed] = spec(Op::In, Enc::None, kSpecPriv);
    map[0xee] = spec(Op::Out, Enc::None, kSpecByte | kSpecPriv);
    map[0xef] = spec(Op::Out, Enc::None, kSpecPriv);

    // F0/F2/F3 prefixes: handled by the decoder's prefix loop.
    map[0xf1] = spec(Op::Int3, Enc::None, kSpecRare | kSpecPriv,
                     CtrlFlow::Interrupt); // int1/icebp
    map[0xf4] = spec(Op::Hlt, Enc::None, kSpecPriv, CtrlFlow::Halt);
    map[0xf5] = spec(Op::Cmc, Enc::None, kSpecRare);
    map[0xf6] = groupSpec(kGrp3b, Enc::M, kSpecByte);
    map[0xf7] = groupSpec(kGrp3v, Enc::M);
    map[0xf8] = spec(Op::Clc, Enc::None, kSpecRare);
    map[0xf9] = spec(Op::Stc, Enc::None, kSpecRare);
    map[0xfa] = spec(Op::Cli, Enc::None, kSpecPriv);
    map[0xfb] = spec(Op::Sti, Enc::None, kSpecPriv);
    map[0xfc] = spec(Op::Cld, Enc::None, kSpecRare);
    map[0xfd] = spec(Op::Std, Enc::None, kSpecRare);
    map[0xfe] = groupSpec(kGrp4, Enc::M, kSpecByte);
    map[0xff] = groupSpec(kGrp5, Enc::M);

    return map;
}

/**
 * Derive the 32-bit one-byte map from the 64-bit one. Every difference
 * is a slot that 64-bit mode repurposed (REX, VEX/EVEX escapes) or
 * removed; the underlying encodings are otherwise identical, so a
 * delta keeps the two maps from drifting apart.
 */
Map
buildOneByteMap32(const Map &map64)
{
    Map map = map64;

    // Push/pop of segment registers and the BCD adjust ops: legal,
    // flagged rare — modern 32-bit compilers never emit them.
    for (u8 b : {0x06, 0x0e, 0x16, 0x1e})
        map[b] = spec(Op::Push, Enc::None, kSpecRare);
    for (u8 b : {0x07, 0x17, 0x1f})
        map[b] = spec(Op::Pop, Enc::None, kSpecRare);
    for (u8 b : {0x27, 0x2f, 0x37, 0x3f})
        map[b] = spec(Op::Sys, Enc::None, kSpecRare); // daa/das/aaa/aas

    // 40-4F: one-byte inc/dec r32 (REX does not exist here).
    for (u8 r = 0; r < 8; ++r) {
        map[0x40 + r] = spec(Op::Inc, Enc::None);
        map[0x48 + r] = spec(Op::Dec, Enc::None);
    }

    map[0x60] = spec(Op::Push, Enc::None, kSpecRare); // pusha
    map[0x61] = spec(Op::Pop, Enc::None, kSpecRare);  // popa
    // 0x62 is bound Gv, Ma (the decoder rejects the mod=3 form);
    // EVEX does not exist in 32-bit mode.
    map[0x62] = spec(Op::Sys, Enc::M, kSpecRare);
    map[0x63] = spec(Op::Sys, Enc::M, kSpecRare); // arpl Ew, Gw

    map[0x82] = groupSpec(kGrp1, Enc::MI8, kSpecByte | kSpecRare);

    // Far transfers with an immediate ptr16:32. Classified as
    // indirect flow: the target is an absolute far pointer, never a
    // section-relative offset the analyses could follow.
    map[0x9a] = spec(Op::Call, Enc::APtr, kSpecRare,
                     CtrlFlow::IndirectCall);
    map[0xea] = spec(Op::Jmp, Enc::APtr, kSpecRare,
                     CtrlFlow::IndirectJump);

    // C4/C5 are les/lds unless the ModRM byte has mod == 3, in which
    // case the decoder takes the VEX escape instead. Loads through
    // memory into a register + segment; Sys keeps the op taxonomy
    // stable across modes.
    map[0xc4] = spec(Op::Sys, Enc::M, kSpecRare); // les
    map[0xc5] = spec(Op::Sys, Enc::M, kSpecRare); // lds

    map[0xce] = spec(Op::Into, Enc::None, kSpecRare,
                     CtrlFlow::Interrupt);

    map[0xd4] = spec(Op::Sys, Enc::I8, kSpecRare);   // aam
    map[0xd5] = spec(Op::Sys, Enc::I8, kSpecRare);   // aad
    map[0xd6] = spec(Op::Sys, Enc::None, kSpecRare); // salc

    return map;
}

Map
buildTwoByteMap()
{
    Map map{};

    map[0x00] = groupSpec(kGrp6, Enc::M, kSpecPriv);
    map[0x01] = groupSpec(kGrp7, Enc::M, kSpecPriv);
    map[0x02] = spec(Op::Sys, Enc::M, kSpecPriv);  // lar
    map[0x03] = spec(Op::Sys, Enc::M, kSpecPriv);  // lsl
    map[0x05] = spec(Op::Syscall, Enc::None, 0, CtrlFlow::Interrupt);
    map[0x06] = spec(Op::Sys, Enc::None, kSpecPriv); // clts
    map[0x07] = spec(Op::Sysret, Enc::None, kSpecPriv, CtrlFlow::Return);
    map[0x08] = spec(Op::Sys, Enc::None, kSpecPriv); // invd
    map[0x09] = spec(Op::Sys, Enc::None, kSpecPriv); // wbinvd
    map[0x0b] = spec(Op::Ud2, Enc::None, 0, CtrlFlow::Halt);
    map[0x0d] = spec(Op::Nop, Enc::M, kSpecRare); // prefetchw group

    // 10-17: SSE data moves (movups/movss/movlps/unpck/movhps...).
    for (u16 b = 0x10; b <= 0x17; ++b)
        map[b] = spec(Op::Sse, Enc::M);
    // 18-1F: hint NOPs; 1F is the canonical multi-byte NOP.
    for (u16 b = 0x18; b <= 0x1e; ++b)
        map[b] = spec(Op::Nop, Enc::M, kSpecRare);
    map[0x1f] = spec(Op::Nop, Enc::M);

    // 20-23: mov to/from control and debug registers.
    for (u16 b = 0x20; b <= 0x23; ++b)
        map[b] = spec(Op::Sys, Enc::M, kSpecPriv);
    // 28-2F: movaps / cvt / ucomis / comis.
    for (u16 b = 0x28; b <= 0x2f; ++b)
        map[b] = spec(Op::Sse, Enc::M);

    map[0x30] = spec(Op::Sys, Enc::None, kSpecPriv);  // wrmsr
    map[0x31] = spec(Op::Rdtsc, Enc::None, kSpecRare);
    map[0x32] = spec(Op::Sys, Enc::None, kSpecPriv);  // rdmsr
    map[0x33] = spec(Op::Sys, Enc::None, kSpecPriv);  // rdpmc
    map[0x34] = spec(Op::Sys, Enc::None, kSpecPriv);  // sysenter
    map[0x35] = spec(Op::Sys, Enc::None, kSpecPriv);  // sysexit
    // 38/3A are three-byte escapes handled by the decoder.

    for (u8 cc = 0; cc < 16; ++cc) {
        map[0x40 + cc] = spec(Op::Cmovcc, Enc::M, kSpecCond);
        map[0x80 + cc] =
            spec(Op::Jcc, Enc::Rel32, kSpecCond, CtrlFlow::CondJump);
        map[0x90 + cc] = spec(Op::Setcc, Enc::M, kSpecCond | kSpecByte);
    }

    // 50-6F: SSE/MMX arithmetic and conversion; all plain ModRM.
    for (u16 b = 0x50; b <= 0x6f; ++b)
        map[b] = spec(Op::Sse, Enc::M);
    // 70-73: shuffles and shift groups take imm8.
    for (u16 b = 0x70; b <= 0x73; ++b)
        map[b] = spec(Op::Sse, Enc::MI8);
    // 74-76: pcmpeq; 77 emms; 78/79 rare; 7C-7F moves.
    for (u16 b = 0x74; b <= 0x76; ++b)
        map[b] = spec(Op::Sse, Enc::M);
    map[0x77] = spec(Op::Sse, Enc::None, kSpecRare); // emms
    for (u16 b = 0x7c; b <= 0x7f; ++b)
        map[b] = spec(Op::Sse, Enc::M);

    map[0xa0] = spec(Op::Push, Enc::None, kSpecRare | kSpecD64);
    map[0xa1] = spec(Op::Pop, Enc::None, kSpecRare | kSpecD64);
    map[0xa2] = spec(Op::Cpuid, Enc::None);
    map[0xa3] = spec(Op::Bt, Enc::M);
    map[0xa4] = spec(Op::Shld, Enc::MI8);
    map[0xa5] = spec(Op::Shld, Enc::M, kSpecShiftCl);
    map[0xa8] = spec(Op::Push, Enc::None, kSpecRare | kSpecD64);
    map[0xa9] = spec(Op::Pop, Enc::None, kSpecRare | kSpecD64);
    map[0xaa] = spec(Op::Sys, Enc::None, kSpecPriv); // rsm
    map[0xab] = spec(Op::Bts, Enc::M, kSpecLockable);
    map[0xac] = spec(Op::Shrd, Enc::MI8);
    map[0xad] = spec(Op::Shrd, Enc::M, kSpecShiftCl);
    map[0xae] = groupSpec(kGrp15, Enc::M, kSpecRare);
    map[0xaf] = spec(Op::Imul, Enc::M);

    map[0xb0] = spec(Op::Cmpxchg, Enc::M, kSpecByte | kSpecLockable);
    map[0xb1] = spec(Op::Cmpxchg, Enc::M, kSpecLockable);
    map[0xb3] = spec(Op::Btr, Enc::M, kSpecLockable);
    map[0xb6] = spec(Op::Movzx, Enc::M);
    map[0xb7] = spec(Op::Movzx, Enc::M);
    map[0xb8] = spec(Op::Popcnt, Enc::M); // with F3; plain 0FB8 is jmpe.
    map[0xba] = groupSpec(kGrp8, Enc::MI8);
    map[0xbb] = spec(Op::Btc, Enc::M, kSpecLockable);
    map[0xbc] = spec(Op::Bsf, Enc::M);
    map[0xbd] = spec(Op::Bsr, Enc::M);
    map[0xbe] = spec(Op::Movsx, Enc::M);
    map[0xbf] = spec(Op::Movsx, Enc::M);

    map[0xc0] = spec(Op::Xadd, Enc::M, kSpecByte | kSpecLockable);
    map[0xc1] = spec(Op::Xadd, Enc::M, kSpecLockable);
    map[0xc2] = spec(Op::Sse, Enc::MI8); // cmpps
    map[0xc3] = spec(Op::Movnti, Enc::M, kSpecRare);
    map[0xc4] = spec(Op::Sse, Enc::MI8); // pinsrw
    map[0xc5] = spec(Op::Sse, Enc::MI8); // pextrw
    map[0xc6] = spec(Op::Sse, Enc::MI8); // shufps
    map[0xc7] = groupSpec(kGrp9, Enc::M);
    for (u8 r = 0; r < 8; ++r)
        map[0xc8 + r] = spec(Op::Bswap, Enc::None);

    // D0-FF: MMX/SSE packed ops; all plain ModRM.
    for (u16 b = 0xd0; b <= 0xff; ++b)
        map[b] = spec(Op::Sse, Enc::M);
    map[0xd7] = spec(Op::Sse, Enc::M); // pmovmskb (reg form only)

    return map;
}

/** The 32-bit 0F map: syscall/sysret are 64-bit-only. */
Map
buildTwoByteMap32(const Map &map64)
{
    Map map = map64;
    map[0x05] = OpSpec{};
    map[0x07] = OpSpec{};
    return map;
}

GroupTable
buildGroups()
{
    GroupTable g{};

    // Group 1: immediate ALU; op from modrm.reg, encoding from parent.
    const Op grp1[8] = {Op::Add, Op::Or, Op::Adc, Op::Sbb,
                        Op::And, Op::Sub, Op::Xor, Op::Cmp};
    for (int i = 0; i < 8; ++i) {
        g[kGrp1][i] = spec(grp1[i], Enc::None,
                           i == 7 ? 0 : kSpecLockable);
    }

    // Group 1A: only /0 (pop r/m) is defined.
    g[kGrp1A][0] = spec(Op::Pop, Enc::None, kSpecD64);

    // Group 2: shifts/rotates. /6 is an undocumented alias of shl.
    const Op grp2[8] = {Op::Rol, Op::Ror, Op::Rcl, Op::Rcr,
                        Op::Shl, Op::Shr, Op::Sal, Op::Sar};
    for (int i = 0; i < 8; ++i)
        g[kGrp2][i] = spec(grp2[i], Enc::None, i == 6 ? kSpecRare : 0);

    // Group 3: test/not/neg/mul/imul/div/idiv. The test forms carry an
    // immediate whose width the group entry overrides.
    g[kGrp3b][0] = spec(Op::Test, Enc::MI8);
    g[kGrp3b][1] = spec(Op::Test, Enc::MI8, kSpecRare);
    g[kGrp3v][0] = spec(Op::Test, Enc::MIz);
    g[kGrp3v][1] = spec(Op::Test, Enc::MIz, kSpecRare);
    for (int t : {kGrp3b, kGrp3v}) {
        g[t][2] = spec(Op::Not, Enc::None, kSpecLockable);
        g[t][3] = spec(Op::Neg, Enc::None, kSpecLockable);
        g[t][4] = spec(Op::Mul, Enc::None);
        g[t][5] = spec(Op::Imul, Enc::None);
        g[t][6] = spec(Op::Div, Enc::None);
        g[t][7] = spec(Op::Idiv, Enc::None);
    }

    // Group 4: inc/dec byte.
    g[kGrp4][0] = spec(Op::Inc, Enc::None, kSpecLockable);
    g[kGrp4][1] = spec(Op::Dec, Enc::None, kSpecLockable);

    // Group 5: inc/dec/call/jmp/push.
    g[kGrp5][0] = spec(Op::Inc, Enc::None, kSpecLockable);
    g[kGrp5][1] = spec(Op::Dec, Enc::None, kSpecLockable);
    g[kGrp5][2] = spec(Op::Call, Enc::None, kSpecD64,
                       CtrlFlow::IndirectCall);
    g[kGrp5][3] = spec(Op::Call, Enc::None, kSpecRare,
                       CtrlFlow::IndirectCall); // callf m16:64
    g[kGrp5][4] = spec(Op::Jmp, Enc::None, kSpecD64,
                       CtrlFlow::IndirectJump);
    g[kGrp5][5] = spec(Op::Jmp, Enc::None, kSpecRare,
                       CtrlFlow::IndirectJump); // jmpf m16:64
    g[kGrp5][6] = spec(Op::Push, Enc::None, kSpecD64);

    // Groups 6/7: descriptor-table and system management; treat every
    // encoding slot as a privileged system op.
    for (int i = 0; i < 8; ++i) {
        g[kGrp6][i] = spec(Op::Sys, Enc::None, kSpecPriv);
        g[kGrp7][i] = spec(Op::Sys, Enc::None, kSpecPriv);
    }

    // Group 8: bt/bts/btr/btc with imm8; /0-/3 undefined.
    g[kGrp8][4] = spec(Op::Bt, Enc::None);
    g[kGrp8][5] = spec(Op::Bts, Enc::None, kSpecLockable);
    g[kGrp8][6] = spec(Op::Btr, Enc::None, kSpecLockable);
    g[kGrp8][7] = spec(Op::Btc, Enc::None, kSpecLockable);

    // Group 9: cmpxchg8b/16b plus rdrand/rdseed reg forms.
    g[kGrp9][1] = spec(Op::Cmpxchg, Enc::None, kSpecLockable);
    g[kGrp9][6] = spec(Op::Sys, Enc::None, kSpecRare); // rdrand
    g[kGrp9][7] = spec(Op::Sys, Enc::None, kSpecRare); // rdseed

    // Group 11: mov r/m, imm; only /0 defined (xbegin/xabort ignored).
    g[kGrp11b][0] = spec(Op::Mov, Enc::None);
    g[kGrp11v][0] = spec(Op::Mov, Enc::None);

    // Group 15: fences, ldmxcsr, xsave family. All slots defined.
    for (int i = 0; i < 8; ++i)
        g[kGrp15][i] = spec(Op::Sys, Enc::None, kSpecRare);

    return g;
}

} // namespace

const Map &
oneByteMap(DecodeMode mode)
{
    static const Map map64 = buildOneByteMap();
    static const Map map32 = buildOneByteMap32(map64);
    return mode == DecodeMode::X64 ? map64 : map32;
}

const Map &
twoByteMap(DecodeMode mode)
{
    static const Map map64 = buildTwoByteMap();
    static const Map map32 = buildTwoByteMap32(map64);
    return mode == DecodeMode::X64 ? map64 : map32;
}

const GroupTable &
groups()
{
    static const GroupTable table = buildGroups();
    return table;
}

} // namespace accdis::x86
