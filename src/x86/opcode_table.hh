/**
 * @file
 * Static opcode tables describing encoding, control flow and oddity
 * flags for the one-byte, two-byte (0F) and group opcode maps, one
 * table set per decode mode.
 *
 * The x86-32 maps are derived from the x86-64 maps: the slots that are
 * invalid-in-64-bit-only come back to life (push/pop seg, the BCD ops,
 * pusha/popa, arpl, far call/jmp ptr16:32, into, aam/aad/salc, the
 * grp1 alias 0x82) and 0x40-0x4F turn from REX prefixes into one-byte
 * inc/dec, while movsxd reverts to arpl and syscall/sysret disappear
 * from the 0F map.
 */

#ifndef ACCDIS_X86_OPCODE_TABLE_HH
#define ACCDIS_X86_OPCODE_TABLE_HH

#include <array>

#include "support/types.hh"
#include "x86/instruction.hh"
#include "x86/mode.hh"

namespace accdis::x86
{

/** Operand-byte layout that follows the opcode. */
enum class Enc : u8
{
    None,   ///< No further bytes.
    M,      ///< ModRM (+SIB/disp), no immediate.
    MI8,    ///< ModRM + imm8.
    MIz,    ///< ModRM + imm16/32 selected by operand size.
    I8,     ///< imm8.
    Iz,     ///< imm16/32 by operand size.
    I16,    ///< imm16 (ret n).
    I16I8,  ///< imm16 + imm8 (enter).
    Rel8,   ///< 8-bit relative branch displacement.
    Rel32,  ///< 32-bit relative branch displacement.
    OI,     ///< B0-BF mov r,imm: imm8 / imm32 / imm64 with REX.W.
    MOffs,  ///< A0-A3 mov moffs: 8-byte absolute (4 with 67h).
    APtr,   ///< 9A/EA far ptr16:32 (x86-32 only): offset + selector.
};

/** Per-opcode static properties beyond the encoding. */
enum SpecFlag : u16
{
    kSpecByte = 1 << 0,     ///< Forces 8-bit operand size.
    kSpecRare = 1 << 1,     ///< Legal but almost never compiler-emitted.
    kSpecPriv = 1 << 2,     ///< Privileged; faults in user mode.
    kSpecD64 = 1 << 3,      ///< Default operand size is 64 in long mode.
    kSpecCond = 1 << 4,     ///< Condition code in the low opcode nibble.
    kSpecLockable = 1 << 5, ///< LOCK prefix is architecturally legal.
    kSpecShiftCl = 1 << 6,  ///< Shift amount comes from CL.
    kSpecShift1 = 1 << 7,   ///< Shift amount is the constant 1.
};

/** One opcode-map or group entry. */
struct OpSpec
{
    Op op = Op::Invalid;
    Enc enc = Enc::None;
    CtrlFlow flow = CtrlFlow::None;
    u16 flags = 0;
    s8 group = -1; ///< Group-table index when modrm.reg refines the op.
};

/** Group identifiers (index into the group table). */
enum GroupId : s8
{
    kGrp1 = 0,   ///< 80/81/83 immediate ALU.
    kGrp1A,      ///< 8F pop.
    kGrp2,       ///< C0/C1/D0-D3 shifts.
    kGrp3b,      ///< F6 unary byte.
    kGrp3v,      ///< F7 unary word/dword/qword.
    kGrp4,       ///< FE inc/dec byte.
    kGrp5,       ///< FF inc/dec/call/jmp/push.
    kGrp6,       ///< 0F00 system.
    kGrp7,       ///< 0F01 system.
    kGrp8,       ///< 0FBA bt/bts/btr/btc imm8.
    kGrp9,       ///< 0FC7 cmpxchg8b/16b and friends.
    kGrp11b,     ///< C6 mov imm8.
    kGrp11v,     ///< C7 mov immz.
    kGrp15,      ///< 0FAE fences/xsave.
    kNumGroups,
};

/** The one-byte opcode map of @p mode (index = first opcode byte). */
const std::array<OpSpec, 256> &oneByteMap(DecodeMode mode);

/** The two-byte opcode map of @p mode (index = byte after 0F). */
const std::array<OpSpec, 256> &twoByteMap(DecodeMode mode);

/** x86-64 one-byte map (compatibility alias). */
inline const std::array<OpSpec, 256> &
oneByteMap()
{
    return oneByteMap(DecodeMode::X64);
}

/** x86-64 two-byte map (compatibility alias). */
inline const std::array<OpSpec, 256> &
twoByteMap()
{
    return twoByteMap(DecodeMode::X64);
}

/** Group table: groups()[gid][modrm.reg]. Mode-independent — the few
 *  per-mode group differences (grp5 far operand sizes) are semantic,
 *  not structural, and handled in the decoder. */
const std::array<std::array<OpSpec, 8>, kNumGroups> &groups();

} // namespace accdis::x86

#endif // ACCDIS_X86_OPCODE_TABLE_HH
