/**
 * @file
 * Batched instruction-length/facet prescan for superset decode.
 *
 * Superset disassembly calls the full decoder once per section byte;
 * at ~60ns per decode that dominates the engine's runtime. The prescan
 * replaces the common case with a table lookup: for instructions whose
 * length and analysis facets are fully determined by (optional REX,
 * first two bytes) — the one-byte map with or without ModRM-register
 * and non-SIB memory forms, and the ModRM-free 0F-map opcodes — a
 * precomputed template entry supplies the SupersetNode facets
 * directly. One-byte-map SIB memory forms are covered too: the SIB
 * byte only contributes address registers (and mod-0 disp32
 * presence), so their entries store SIB-stripped facets that the
 * lookup patches from the real bytes (kValidSib). Everything else
 * (legacy prefixes, VEX/EVEX, 0F-map ModRM forms, section tails)
 * explicitly defers to the authoritative full decoder, so the prescan
 * can never be wrong — only incomplete.
 *
 * There is one table set per DecodeMode, built lazily on first use:
 * x86-64 keys are (REX-variant, two bytes) across 9 variant planes,
 * x86-32 keys are the plain first two bytes in a single plane (0x40-
 * 0x4F are one-byte inc/dec there, not prefixes). The tables are
 * built once per process by running the real decoder (in that mode)
 * over every eligible key on a zero-padded synthetic buffer. Facets are a pure function of the consumed bytes,
 * and for eligible keys every length-or-validity-relevant byte lies
 * inside the key; trailing displacement/immediate bytes only shift
 * disp/imm/target values, which the entry state accounts for (direct
 * rel32 targets are re-read from the section at lookup time).
 *
 * Entries are hand-packed to 16 bytes — the tables are consulted once
 * per section byte with data-dependent keys, so entry density (four
 * per cache line) is what keeps the lookup from being one cache miss
 * per byte. The field layout mirrors SupersetNode (register masks
 * pre-split into 16-bit halves plus the shared high byte, hasTarget
 * folded into the flag word's top bit) so the superset fill is a
 * straight field copy.
 */

#ifndef ACCDIS_X86_PRESCAN_HH
#define ACCDIS_X86_PRESCAN_HH

#include "support/bytes.hh"
#include "support/types.hh"
#include "x86/instruction.hh"
#include "x86/mode.hh"

namespace accdis::x86
{

/** Facet template for one (REX-variant, two-byte) decode key. */
struct PrescanEntry
{
    enum State : u8
    {
        kDefer = 0,   ///< Consult the full decoder.
        kValid = 1,   ///< Facets below are exact.
        kValidRel32 = 2, ///< Exact, but targetRel re-read at lookup.
        kInvalid = 3, ///< No instruction decodes at this key.
        /** Exact except for the SIB byte's contribution: callers must
         *  apply prescanApplySib() to patch the length (mod==0 only)
         *  and OR in the base/index address registers. */
        kValidSib = 4,
    };

    u8 length = 0;
    u8 opcodeByte = 0;
    Op op = Op::Invalid;
    CtrlFlow flow = CtrlFlow::None;
    /** InsnFlag bits 0-14; bit 15 stores hasTarget. */
    u16 packedFlags = 0;
    /** regsRead bits 0-15. */
    u16 regsReadLow = 0;
    s32 targetRel = 0; ///< Branch target minus instruction offset.
    /** regsWritten bits 0-15. */
    u16 regsWrittenLow = 0;
    /** regsRead bits 16-18 low nibble, regsWritten 16-18 high. */
    u8 regsHigh = 0;
    u8 state = kDefer;

    static constexpr u16 kHasTargetBit = u16{1} << 15;

    bool hasTarget() const { return packedFlags & kHasTargetBit; }

    /** The decoder's InsnFlag word. */
    u16 flags() const { return packedFlags & ~kHasTargetBit; }

    RegMask
    regsRead() const
    {
        return regsReadLow | (RegMask{regsHigh} & 0x7) << 16;
    }

    RegMask
    regsWritten() const
    {
        return regsWrittenLow | (RegMask{regsHigh} >> 4 & 0x7) << 16;
    }
};

static_assert(sizeof(PrescanEntry) == 16,
              "PrescanEntry must stay 16 bytes: the tables are probed "
              "once per section byte with data-dependent keys");

/** 9 REX variants: 0 = none, 1..8 indexed by the W/R/B bits (REX.X
 *  only affects the SIB index register, which kValidSib entries
 *  derive from the real bytes at lookup time). */
inline constexpr unsigned kPrescanVariants = 9;
inline constexpr std::size_t kPrescanKeys = std::size_t{1} << 16;

/** Variant count of a mode's table set: x86-32 has no REX, so its
 *  table is a single 65536-entry plane. */
inline constexpr unsigned
prescanVariantCount(DecodeMode mode)
{
    return mode == DecodeMode::X64 ? kPrescanVariants : 1;
}

/** Variant index of REX byte @p rex (0x40..0x4f). */
inline unsigned
prescanVariantOf(u8 rex)
{
    return 1 + (((rex >> 1) & 6) | (rex & 1));
}

/**
 * Base of @p mode's template tables (prescanVariantCount(mode) x
 * kPrescanKeys entries, variant-major). The first call in a process
 * builds that mode's set (~0.5M decoder invocations for x64);
 * prescanWarm() triggers it eagerly so the cost lands outside timed
 * regions. Hoist the returned pointer out of per-byte loops.
 */
const PrescanEntry *prescanTableData(DecodeMode mode);

/** x86-64 table base (compatibility alias). */
inline const PrescanEntry *
prescanTableData()
{
    return prescanTableData(DecodeMode::X64);
}

/** Build @p mode's template tables now (idempotent, thread-safe). */
void prescanWarm(DecodeMode mode);

/** Build the x86-64 tables now (compatibility alias). */
inline void
prescanWarm()
{
    prescanWarm(DecodeMode::X64);
}

/**
 * Look up the prescan entry for the decode at @p off against a hoisted
 * @p table base (from prescanTableData()).
 *
 * Returns nullptr when the prescan defers (prefix bytes, VEX/EVEX,
 * 0F ModRM forms, unverifiable SIB keys, or fewer than 15 readable
 * bytes — the section tail always takes the full decoder). A non-null
 * entry has state kValid, kValidRel32, kValidSib or kInvalid and its
 * facets are exactly what the full decoder would produce; kValidRel32
 * callers obtain the target via prescanTargetRel(), kValidSib callers
 * must additionally apply prescanApplySib().
 */
/**
 * Address of the table entry the decode at @p off keys to, ignoring
 * the tail guard and the entry state. @pre off + 2 < bytes.size().
 * Exposed so sequential scans can prefetch entries ahead of use — the
 * tables are far larger than L2 and the keys are data-dependent, so
 * an unprefetched probe is a cache miss per section byte.
 */
inline const PrescanEntry *
prescanEntryAddr(const PrescanEntry *table, ByteSpan bytes, Offset off)
{
    // Select-based rather than branched: whether an offset starts
    // with REX is data-dependent and mispredicts on real sections.
    const u8 c0 = bytes[off];
    const u8 b1 = bytes[off + 1];
    const u8 b2 = bytes[off + 2];
    const bool rex = (c0 & 0xf0) == 0x40;
    const std::size_t variant =
        rex ? 1 + (((c0 >> 1) & 6) | (c0 & 1)) : 0;
    const std::size_t hi = rex ? b1 : c0;
    const std::size_t lo = rex ? b2 : b1;
    return &table[variant * kPrescanKeys + ((hi << 8) | lo)];
}

inline const PrescanEntry *
prescanLookup(const PrescanEntry *table, ByteSpan bytes, Offset off)
{
    // Tail guard: with fewer than 15 readable bytes a cached length
    // could run past the section while the real decoder would reject;
    // the tail always takes the authoritative path.
    if (off + 15 > bytes.size())
        return nullptr;
    const PrescanEntry *e = prescanEntryAddr(table, bytes, off);
    return e->state == PrescanEntry::kDefer ? nullptr : e;
}

/**
 * x86-32 flavor of prescanEntryAddr: no REX, so the key is simply the
 * first two bytes. @pre off + 1 < bytes.size().
 */
inline const PrescanEntry *
prescanEntryAddr32(const PrescanEntry *table, ByteSpan bytes, Offset off)
{
    const std::size_t hi = bytes[off];
    const std::size_t lo = bytes[off + 1];
    return &table[(hi << 8) | lo];
}

/** x86-32 flavor of prescanLookup against a table base from
 *  prescanTableData(DecodeMode::X86). */
inline const PrescanEntry *
prescanLookup32(const PrescanEntry *table, ByteSpan bytes, Offset off)
{
    if (off + 15 > bytes.size())
        return nullptr;
    const PrescanEntry *e = prescanEntryAddr32(table, bytes, off);
    return e->state == PrescanEntry::kDefer ? nullptr : e;
}

/** Convenience overload that fetches (and lazily builds) the table. */
inline const PrescanEntry *
prescanLookup(ByteSpan bytes, Offset off,
              DecodeMode mode = DecodeMode::X64)
{
    const PrescanEntry *table = prescanTableData(mode);
    return mode == DecodeMode::X64 ? prescanLookup(table, bytes, off)
                                   : prescanLookup32(table, bytes, off);
}

/**
 * targetRel for an entry at @p off: the template value for kValid, or
 * the rel32 immediate re-read from the instruction's last four bytes
 * for kValidRel32. @pre the entry came from prescanLookup(bytes, off).
 */
inline s32
prescanTargetRel(const PrescanEntry &entry, ByteSpan bytes, Offset off)
{
    if (entry.state != PrescanEntry::kValidRel32)
        return entry.targetRel;
    return static_cast<s32>(entry.length) +
           static_cast<s32>(readLe32(bytes, off + entry.length - 4));
}

/**
 * Patch a kValidSib entry's facets with the SIB byte's contribution:
 * the template was built with a no-register SIB (mod 0) or a known
 * strippable base (mod 1/2), so the adjustments are purely additive —
 * mod 0 drops the template's disp32 unless base == 101, and the
 * actual base/index registers (REX.B/REX.X applied from the real
 * bytes; the table folds REX.X away) are ORed into the read mask.
 * @pre the entry came from prescanLookup(bytes, off).
 */
inline void
prescanApplySib(const PrescanEntry &entry, ByteSpan bytes, Offset off,
                u8 &length, u16 &regsReadLow)
{
    const u8 c0 = bytes[off];
    const bool hasRex = c0 >= 0x40 && c0 <= 0x4f;
    const u8 rexB = hasRex ? (c0 & 1) : 0;
    const u8 rexX = hasRex ? ((c0 >> 1) & 1) : 0;
    const u8 mod =
        static_cast<u8>(bytes[off + (hasRex ? 2 : 1)] >> 6);
    const u8 sib = bytes[off + (hasRex ? 3 : 2)];
    const u8 baseLow = sib & 7;
    length = entry.length;
    u16 extra = 0;
    if (mod == 0) {
        // Template SIB had base == 101: disp32, no base register.
        if (baseLow != 5) {
            length = static_cast<u8>(length - 4);
            extra |= static_cast<u16>(
                u16{1} << (baseLow | (rexB << 3)));
        }
    } else {
        extra |=
            static_cast<u16>(u16{1} << (baseLow | (rexB << 3)));
    }
    const u8 index =
        static_cast<u8>(((sib >> 3) & 7) | (rexX << 3));
    if (index != 4)
        extra |= static_cast<u16>(u16{1} << index);
    regsReadLow = entry.regsReadLow | extra;
}

} // namespace accdis::x86

#endif // ACCDIS_X86_PRESCAN_HH
