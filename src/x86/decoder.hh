/**
 * @file
 * From-scratch, mode-aware x86 instruction decoder.
 *
 * The decoder is length-exact for the instruction subset that
 * compilers emit (all one-byte opcodes valid in the selected mode, the
 * 0F map, the 0F38/0F3A escapes, VEX), and classifies each decode with
 * the semantic facets the disassembly analyses need: control-flow
 * class, direct branch targets, register def/use masks, and behavioral
 * oddity flags (privileged, rare, redundant prefixes, ...).
 *
 * Mode differences are confined to the opcode tables plus a handful of
 * facet decisions (REX-vs-inc/dec, operand-size defaults, mod=0 rm=5
 * resolution, VEX-vs-les/lds); see x86/mode.hh.
 */

#ifndef ACCDIS_X86_DECODER_HH
#define ACCDIS_X86_DECODER_HH

#include "support/types.hh"
#include "x86/instruction.hh"
#include "x86/mode.hh"

namespace accdis::x86
{

/**
 * Decode one instruction at @p off within @p bytes under @p mode.
 *
 * On failure (undefined opcode, instruction longer than 15 bytes or
 * running past the end of @p bytes, encodings that #UD such as LOCK on
 * a non-lockable instruction), the returned Instruction has
 * op == Op::Invalid and valid() == false.
 *
 * Branch targets of direct jumps/calls are reported as *signed*
 * section-relative offsets (Instruction::target); they may lie outside
 * [0, bytes.size()) and callers decide how to treat escaping flow.
 */
Instruction decode(ByteSpan bytes, Offset off,
                   DecodeMode mode = DecodeMode::X64);

} // namespace accdis::x86

#endif // ACCDIS_X86_DECODER_HH
