#include "x86/prescan.hh"

#include <vector>

#include "x86/decoder.hh"
#include "x86/opcode_table.hh"

namespace accdis::x86
{

namespace
{

u8
rexOfVariant(unsigned v)
{
    if (v == 0)
        return 0;
    unsigned v3 = v - 1;
    return static_cast<u8>(0x40 | ((v3 & 4) << 1) | ((v3 & 2) << 1) |
                           (v3 & 1));
}

bool
isLegacyPrefix(u8 b)
{
    switch (b) {
      case 0x26: case 0x2e: case 0x36: case 0x3e:
      case 0x64: case 0x65: case 0x66: case 0x67:
      case 0xf0: case 0xf2: case 0xf3:
        return true;
      default:
        return false;
    }
}

bool
specHasModRm(const OpSpec &sp)
{
    return sp.enc == Enc::M || sp.enc == Enc::MI8 ||
           sp.enc == Enc::MIz || sp.group >= 0;
}

/**
 * True when the decode at this key can read a length-or-validity
 * relevant byte beyond (rex, b0, b1) and must take the full decoder.
 */
bool
deferKey(DecodeMode mode, bool hasRex, u8 b0, u8 b1)
{
    if (isLegacyPrefix(b0))
        return true; // Prefix chains restart the state machine.
    if (mode == DecodeMode::X64) {
        if (b0 >= 0x40 && b0 <= 0x4f)
            return true; // A (second) REX byte; REX is the last one.
        if (b0 == 0x62 || b0 == 0xc4 || b0 == 0xc5)
            // VEX/EVEX validity and length depend on bytes past the
            // key — except after REX, where the decoder rejects
            // immediately, so those keys are cacheable invalids.
            return !hasRex;
    } else if ((b0 == 0xc4 || b0 == 0xc5) && (b1 & 0xc0) == 0xc0) {
        // 32-bit VEX form (les/lds otherwise): length depends on
        // bytes past the key.
        return true;
    }
    if (b0 == 0x0f) {
        if (b1 == 0x38 || b1 == 0x3a)
            return true; // Three-byte maps: opcode is outside the key.
        // ModRM outside the key.
        return specHasModRm(twoByteMap(mode)[b1]);
    }
    const OpSpec &sp = oneByteMap(mode)[b0];
    if (specHasModRm(sp)) {
        // ModRM is b1: length is key-determined unless a SIB byte
        // follows (memory form with rm == 4).
        u8 mod = b1 >> 6;
        u8 rm = b1 & 7;
        if (mod != 3 && rm == 4)
            return true;
    }
    return false;
}

/** One-byte-map memory form whose rm field announces a SIB byte. */
bool
isSibKey(DecodeMode mode, u8 b0, u8 b1)
{
    if (isLegacyPrefix(b0) || b0 == 0x0f)
        return false;
    if (mode == DecodeMode::X64) {
        if ((b0 >= 0x40 && b0 <= 0x4f) || b0 == 0x62 || b0 == 0xc4 ||
            b0 == 0xc5)
            return false;
    } else if ((b0 == 0xc4 || b0 == 0xc5) && (b1 & 0xc0) == 0xc0) {
        return false; // VEX form, not les/lds.
    }
    const OpSpec &sp = oneByteMap(mode)[b0];
    return specHasModRm(sp) && (b1 >> 6) != 3 && (b1 & 7) == 4;
}

/**
 * Build a kValidSib entry: the SIB byte only contributes the base and
 * index address registers (and, under mod 0, whether a disp32
 * follows), so the entry stores SIB-stripped facets and the lookup
 * patches the real SIB's contribution back in (prescanApplySib).
 *
 * The strip is verified, not assumed: the key is decoded under two
 * templates with different bases — 0x25 (index none, base 101: bare
 * disp32 under mod 0, rbp/r13 under mod 1/2) and 0x26 (index none,
 * base rsi/r14, no disp under mod 0) — and the entry is only cached
 * when the two decodes agree exactly after removing each template's
 * own base-register bit. Any key where the base collides with a
 * genuine operand register (the strip would eat a real read) shows up
 * as a mismatch between the two stripped decodes and defers.
 */
void
buildSibEntry(PrescanEntry &e, DecodeMode mode, u8 rex, u8 b0, u8 b1)
{
    const u8 rexB = rex & 1;
    const u8 mod = b1 >> 6;
    u8 buf[18] = {};
    std::size_t i = 0;
    if (rex)
        buf[i++] = rex;
    buf[i++] = b0;
    buf[i++] = b1;
    const std::size_t sibAt = i;
    buf[sibAt] = 0x25;
    Instruction a = decode(ByteSpan(buf, sizeof buf), 0, mode);
    buf[sibAt] = 0x26;
    Instruction b = decode(ByteSpan(buf, sizeof buf), 0, mode);
    if (!a.valid() || !b.valid()) {
        if (!a.valid() && !b.valid())
            e.state = PrescanEntry::kInvalid;
        return; // Validity depends on the SIB byte: defer.
    }
    if (a.hasTarget || b.hasTarget)
        return; // No direct-target op takes a SIB; defer if one does.
    if (a.op != b.op || a.flow != b.flow || a.flags != b.flags ||
        a.opcodeByte != b.opcodeByte ||
        a.regsWritten != b.regsWritten)
        return;
    const RegMask aBase = RegMask{1} << (5 | (rexB << 3));
    const RegMask bBase = RegMask{1} << (6 | (rexB << 3));
    RegMask aRead = a.regsRead;
    RegMask bRead = b.regsRead;
    if (mod == 0) {
        // Template A is base-register-free (base 101 == disp32), so
        // its decode already is the stripped form; B must match it
        // after dropping its base and its missing disp32.
        if (a.length != b.length + 4)
            return;
        if ((bRead & bBase) == 0)
            return;
        bRead &= ~bBase;
    } else {
        if (a.length != b.length)
            return;
        if ((aRead & aBase) == 0 || (bRead & bBase) == 0)
            return;
        aRead &= ~aBase;
        bRead &= ~bBase;
    }
    if (aRead != bRead)
        return;
    e.length = a.length; // mod 0: the base==101 (disp32) length.
    e.opcodeByte = a.opcodeByte;
    e.op = a.op;
    e.flow = a.flow;
    e.packedFlags =
        static_cast<u16>(a.flags & ~PrescanEntry::kHasTargetBit);
    e.targetRel = 0;
    e.regsReadLow = static_cast<u16>(aRead);
    e.regsWrittenLow = static_cast<u16>(a.regsWritten);
    e.regsHigh =
        static_cast<u8>((aRead >> 16 & 0x7) |
                        ((a.regsWritten >> 16 & 0x7) << 4));
    e.state = PrescanEntry::kValidSib;
}

void
buildEntry(PrescanEntry &e, DecodeMode mode, u8 rex, u8 b0, u8 b1)
{
    if (isSibKey(mode, b0, b1)) {
        buildSibEntry(e, mode, rex, b0, b1);
        return;
    }
    if (deferKey(mode, rex != 0, b0, b1))
        return; // Stays kDefer.

    // Decode the key on a zero-padded buffer long enough for the
    // 15-byte instruction-length cap; trailing disp/imm bytes never
    // affect the facets of an eligible key.
    u8 buf[18] = {};
    std::size_t i = 0;
    if (rex)
        buf[i++] = rex;
    buf[i++] = b0;
    buf[i++] = b1;
    Instruction insn = decode(ByteSpan(buf, sizeof buf), 0, mode);
    if (!insn.valid()) {
        // Eligible keys decode without reading validity-relevant bytes
        // past the key, so an invalid here is invalid everywhere.
        e.state = PrescanEntry::kInvalid;
        return;
    }
    e.length = insn.length;
    e.opcodeByte = insn.opcodeByte;
    e.op = insn.op;
    e.flow = insn.flow;
    e.packedFlags =
        static_cast<u16>(insn.flags & ~PrescanEntry::kHasTargetBit);
    if (insn.hasTarget)
        e.packedFlags |= PrescanEntry::kHasTargetBit;
    e.targetRel =
        insn.hasTarget ? static_cast<s32>(insn.target) : 0; // Offset 0.
    e.regsReadLow = static_cast<u16>(insn.regsRead);
    e.regsWrittenLow = static_cast<u16>(insn.regsWritten);
    e.regsHigh =
        static_cast<u8>((insn.regsRead >> 16 & 0x7) |
                        ((insn.regsWritten >> 16 & 0x7) << 4));
    if (insn.hasTarget) {
        // Rel8 immediates sit inside the key (one-byte map, imm == b1)
        // so the template target is final; every other direct-target
        // form (E8/E9, 0F 8x, C7 F8 xbegin) carries a rel32 as its
        // last four bytes, re-read at lookup time.
        bool rel8 =
            insn.opcodeMap == 0 && oneByteMap(mode)[b0].enc == Enc::Rel8;
        e.state = rel8 ? PrescanEntry::kValid : PrescanEntry::kValidRel32;
    } else {
        e.state = PrescanEntry::kValid;
    }
}

struct Tables
{
    std::vector<PrescanEntry> entries;
};

Tables
buildTables(DecodeMode mode)
{
    Tables t;
    const unsigned variants = prescanVariantCount(mode);
    t.entries.resize(variants * kPrescanKeys);
    for (unsigned v = 0; v < variants; ++v) {
        u8 rex = rexOfVariant(v);
        for (std::size_t key = 0; key < kPrescanKeys; ++key) {
            if (mode == DecodeMode::X64 && v == 0 &&
                ((key >> 8) & 0xf0) == 0x40)
                continue; // Unreachable: lookup routes REX to variants.
            buildEntry(t.entries[v * kPrescanKeys + key], mode, rex,
                       static_cast<u8>(key >> 8),
                       static_cast<u8>(key & 0xff));
        }
    }
    return t;
}

const Tables &
tables(DecodeMode mode)
{
    // One lazily built table set per mode: a batch that never touches
    // 32-bit binaries never pays for the 32-bit tables.
    if (mode == DecodeMode::X64) {
        static const Tables t64 = buildTables(DecodeMode::X64);
        return t64;
    }
    static const Tables t32 = buildTables(DecodeMode::X86);
    return t32;
}

} // namespace

const PrescanEntry *
prescanTableData(DecodeMode mode)
{
    return tables(mode).entries.data();
}

void
prescanWarm(DecodeMode mode)
{
    (void)tables(mode);
}

} // namespace accdis::x86
